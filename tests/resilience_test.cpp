// Sweep-robustness tests (ISSUE-10): cooperative abort, the checkpointed
// sweep journal, watchdog timeout + quarantine + bounded retry, crash
// quarantine, kill-and-resume reproducing the uninterrupted sweep's
// aggregates byte-identically, and exact shed accounting in the online
// event queue.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/hidden_race.hpp"
#include "src/explore/journal.hpp"
#include "src/explore/sweeper.hpp"
#include "src/online/event_queue.hpp"
#include "src/simmpi/abort.hpp"
#include "src/trace/event.hpp"

namespace home::explore {
namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).is_open();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------ cooperative abort

TEST(Abort, RequestAbortWakesABlockedWaitPromptly) {
  simmpi::clear_abort();
  std::mutex mu;
  std::condition_variable cv;
  bool aborted = false;
  std::chrono::steady_clock::duration waited{};

  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    const auto t0 = std::chrono::steady_clock::now();
    try {
      // Predicate never holds and the timeout is far away: only the abort
      // flag can end this wait.
      simmpi::abortable_wait(cv, lock, 60000, [] { return false; });
    } catch (const simmpi::AbortError& e) {
      aborted = true;
      EXPECT_NE(std::string(e.what()).find("watchdog test"),
                std::string::npos);
    }
    waited = std::chrono::steady_clock::now() - t0;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  simmpi::request_abort("watchdog test");
  waiter.join();
  EXPECT_TRUE(aborted);
  // The wait must collapse within a few poll intervals, not the timeout.
  EXPECT_LT(waited, std::chrono::seconds(5));

  simmpi::clear_abort();
  EXPECT_FALSE(simmpi::abort_requested());
}

TEST(Abort, WaitSemanticsMatchCvWaitWhenNoAbortIsRequested) {
  simmpi::clear_abort();
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  // Timeout path: predicate never holds.
  EXPECT_FALSE(simmpi::abortable_wait(cv, lock, 30, [] { return false; }));
  // Immediate path: predicate already holds.
  EXPECT_TRUE(simmpi::abortable_wait(cv, lock, 30, [] { return true; }));
}

// --------------------------------------------------------- sweep journal

JournalMeta test_meta() {
  JournalMeta meta;
  meta.schedules = 4;
  meta.base_seed = 9;
  meta.strategy = "wildcard";
  return meta;
}

TEST(Journal, RecordsRoundTripAndTornTrailingBlocksAreDiscarded) {
  const std::string path = testing::TempDir() + "/home_journal_rt.txt";
  { std::ofstream(path, std::ios::trunc); }

  {
    SweepJournal journal(path, test_meta());
    ASSERT_TRUE(journal.ok());
    JournalEntry baseline;
    baseline.index = -1;
    baseline.seed = 0;
    baseline.hook_hits = 11;
    baseline.keys = {"1|0|a|a|c0"};
    journal.record(baseline);

    JournalEntry sched;
    sched.index = 2;
    sched.seed = 11;
    sched.signature = 0xfeedface;
    sched.hook_hits = 42;
    sched.status = "timeout";
    sched.retries = 3;
    sched.errors = {"rank 0: watchdog"};
    sched.schedule_path = "/tmp/seed11.schedule";
    sched.faultplan_path = "/tmp/seed11.faultplan";
    sched.certificates = 2;
    sched.certificates_verified = 1;
    journal.record(sched);
  }
  // A block torn by a kill: `run` without its closing `end`.
  {
    std::ofstream out(path, std::ios::app);
    out << "run 3 12 77 99 ok 0\nkey 3 2|0|b|b|c1\n";
  }

  std::map<int, JournalEntry> entries;
  std::size_t torn = 0;
  ASSERT_TRUE(SweepJournal::load(path, test_meta(), &entries, &torn));
  EXPECT_EQ(torn, 1u);
  ASSERT_EQ(entries.size(), 2u);
  ASSERT_TRUE(entries.count(-1));
  EXPECT_EQ(entries[-1].hook_hits, 11u);
  EXPECT_EQ(entries[-1].keys, std::set<std::string>{"1|0|a|a|c0"});
  ASSERT_TRUE(entries.count(2));
  const JournalEntry& got = entries[2];
  EXPECT_EQ(got.seed, 11u);
  EXPECT_EQ(got.signature, 0xfeedfaceu);
  EXPECT_EQ(got.status, "timeout");
  EXPECT_EQ(got.retries, 3);
  ASSERT_EQ(got.errors.size(), 1u);
  EXPECT_EQ(got.errors[0], "rank 0: watchdog");
  EXPECT_EQ(got.schedule_path, "/tmp/seed11.schedule");
  EXPECT_EQ(got.faultplan_path, "/tmp/seed11.faultplan");
  EXPECT_EQ(got.certificates, 2u);
  EXPECT_EQ(got.certificates_verified, 1u);
  // The torn index-3 block must NOT surface.
  EXPECT_FALSE(entries.count(3));
  std::remove(path.c_str());
}

TEST(Journal, LoadRejectsAMetaMismatchAndMissingFiles) {
  const std::string path = testing::TempDir() + "/home_journal_meta.txt";
  { std::ofstream(path, std::ios::trunc); }
  {
    SweepJournal journal(path, test_meta());
    ASSERT_TRUE(journal.ok());
  }
  std::map<int, JournalEntry> entries;
  JournalMeta other = test_meta();
  other.base_seed = 1234;  // a *different* sweep's journal must not resume.
  EXPECT_FALSE(SweepJournal::load(path, other, &entries));
  EXPECT_TRUE(SweepJournal::load(path, test_meta(), &entries));
  EXPECT_FALSE(SweepJournal::load(path + ".does-not-exist", test_meta(),
                                  &entries));
  std::remove(path.c_str());
}

// ---------------------------------------- watchdog, retries, quarantine

/// Rank 0 posts a receive no rank ever satisfies: a deterministic hang with
/// no fault injection involved.
Sweeper::RankMain hanging_main() {
  return [](simmpi::Process& p) {
    p.init_thread(simmpi::ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      int x = 0;
      p.recv(&x, 1, simmpi::Datatype::kInt, 1, 99, simmpi::kCommWorld,
             nullptr, {"hang.recv"});
    }
    p.finalize();
  };
}

TEST(SweepResilience, WatchdogQuarantinesAHangingScheduleAfterRetries) {
  SweepConfig cfg;
  cfg.nranks = 2;
  cfg.nthreads = 1;
  cfg.schedules = 1;
  cfg.run_baseline = false;  // the baseline would hang identically.
  cfg.strategy = StrategyKind::kRandomWalk;
  cfg.schedule_timeout_ms = 300;
  cfg.block_timeout_ms = 60000;  // only the watchdog may end the run.
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 1;
  cfg.quarantine_dir = testing::TempDir();

  const SweepResult result = Sweeper(cfg).run(hanging_main());
  EXPECT_EQ(result.schedules_run, 1);
  EXPECT_EQ(result.timeouts, 1);
  EXPECT_EQ(result.crashes, 0);
  EXPECT_EQ(result.retries, 2);  // two re-runs beyond the first attempt.
  ASSERT_EQ(result.quarantined.size(), 1u);
  const QuarantinedSchedule& q = result.quarantined[0];
  EXPECT_EQ(q.status, "timeout");
  EXPECT_EQ(q.retries, 2);
  EXPECT_FALSE(q.reason.empty());
  ASSERT_FALSE(q.schedule_path.empty());
  EXPECT_TRUE(file_exists(q.schedule_path));
  // The human-readable reason rides along with the artifacts.
  const std::string reason_path =
      cfg.quarantine_dir + "/seed" + std::to_string(q.seed) + ".reason.txt";
  EXPECT_TRUE(file_exists(reason_path));
  const std::string reason = slurp(reason_path);
  EXPECT_NE(reason.find("timeout"), std::string::npos);
  std::remove(q.schedule_path.c_str());
  std::remove(reason_path.c_str());
}

TEST(SweepResilience, ACrashingScheduleIsQuarantinedAsACrash) {
  SweepConfig cfg;
  cfg.nranks = 0;  // Universe rejects nranks=0: a deterministic "crash".
  cfg.schedules = 1;
  cfg.run_baseline = false;
  cfg.max_retries = 1;
  cfg.retry_backoff_ms = 1;

  const SweepResult result = Sweeper(cfg).run([](simmpi::Process&) {});
  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.retries, 1);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].status, "crash");
  EXPECT_FALSE(result.quarantined[0].reason.empty());
}

// ------------------------------------------------------- kill and resume

Sweeper::RankMain hidden_main() {
  return [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
}

SweepConfig hidden_config(const std::string& journal_path) {
  SweepConfig cfg;
  cfg.nranks = apps::kHiddenRaceRanks;
  cfg.nthreads = 2;
  cfg.schedules = 6;
  cfg.base_seed = 1;
  cfg.strategy = StrategyKind::kWildcardReorder;
  cfg.schedule_dir = testing::TempDir();
  cfg.journal_path = journal_path;
  return cfg;
}

std::set<std::string> finding_keys(const SweepResult& r) {
  std::set<std::string> keys;
  for (const SweepFinding& f : r.findings) keys.insert(f.key);
  return keys;
}

TEST(SweepResilience, ResumeReproducesTheUninterruptedSweepByteIdentically) {
  const std::string ja = testing::TempDir() + "/home_resume_a.journal";
  const std::string jb = testing::TempDir() + "/home_resume_b.journal";
  { std::ofstream(ja, std::ios::trunc); }

  const SweepResult full = Sweeper(hidden_config(ja)).run(hidden_main());
  ASSERT_GT(full.findings.size(), 0u);
  EXPECT_EQ(full.resumed, 0);

  // Simulate a kill *after* the sweep's last checkpoint: copy the journal
  // and tear its tail (a block the kill interrupted mid-write).
  {
    std::ofstream out(jb, std::ios::trunc | std::ios::binary);
    out << slurp(ja);
    out << "run 99 100 1 2 ok 0\nkey 99 torn|record\n";
  }
  const SweepResult resumed = Sweeper(hidden_config(jb)).run(hidden_main());

  // Every schedule (and the baseline) replays from the journal...
  EXPECT_EQ(resumed.resumed, 7);  // 6 schedules + the baseline.
  EXPECT_EQ(resumed.journal_torn_blocks, 1u);
  // ...and the aggregates are byte-identical to the uninterrupted sweep's.
  EXPECT_EQ(finding_keys(resumed), finding_keys(full));
  EXPECT_EQ(resumed.baseline_keys, full.baseline_keys);
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  EXPECT_EQ(resumed.hook_hits, full.hook_hits);
  EXPECT_EQ(resumed.schedules_run, full.schedules_run);
  ASSERT_EQ(resumed.findings.size(), full.findings.size());
  for (std::size_t i = 0; i < full.findings.size(); ++i) {
    EXPECT_EQ(resumed.findings[i].key, full.findings[i].key);
    EXPECT_EQ(resumed.findings[i].seed, full.findings[i].seed);
    EXPECT_EQ(resumed.findings[i].schedule_index,
              full.findings[i].schedule_index);
  }
  std::remove(ja.c_str());
  std::remove(jb.c_str());
}

TEST(SweepResilience, AMidSweepKillResumesAndCompletesTheRemainder) {
  const std::string ja = testing::TempDir() + "/home_reskill_a.journal";
  const std::string jc = testing::TempDir() + "/home_reskill_c.journal";
  { std::ofstream(ja, std::ios::trunc); }

  const SweepResult full = Sweeper(hidden_config(ja)).run(hidden_main());
  ASSERT_GT(full.findings.size(), 0u);

  // Simulate SIGKILL mid-sweep: keep only the first three `end`-closed
  // blocks (baseline + two schedules), exactly what flush-per-record
  // guarantees survives.
  {
    std::istringstream in(slurp(ja));
    std::ofstream out(jc, std::ios::trunc | std::ios::binary);
    std::string line;
    int ends = 0;
    while (ends < 3 && std::getline(in, line)) {
      out << line << '\n';
      if (line.rfind("end ", 0) == 0) ++ends;
    }
    ASSERT_EQ(ends, 3);
  }
  const SweepResult resumed = Sweeper(hidden_config(jc)).run(hidden_main());

  EXPECT_EQ(resumed.resumed, 3);
  EXPECT_EQ(resumed.schedules_run, full.schedules_run);
  // The resumed half re-runs live; per-seed schedule determinism makes the
  // union land exactly where the uninterrupted sweep did.
  EXPECT_EQ(finding_keys(resumed), finding_keys(full));
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  std::remove(ja.c_str());
  std::remove(jc.c_str());
}

// ------------------------------------------------- online shed accounting

TEST(EventQueue, ShedAndShutdownDropsAreAccountedByCause) {
  online::EventQueue q(2, online::BackpressurePolicy::kDropNewest);
  EXPECT_EQ(q.push_accounted(trace::Event{}), online::PushOutcome::kAccepted);
  EXPECT_EQ(q.push_accounted(trace::Event{}), online::PushOutcome::kAccepted);
  // Full queue under kDropNewest: the incoming event is shed, by capacity.
  EXPECT_EQ(q.push_accounted(trace::Event{}),
            online::PushOutcome::kShedCapacity);
  EXPECT_EQ(q.dropped_capacity(), 1u);
  EXPECT_EQ(q.dropped_shutdown(), 0u);

  q.close();
  EXPECT_EQ(q.push_accounted(trace::Event{}),
            online::PushOutcome::kDroppedShutdown);
  EXPECT_EQ(q.dropped_capacity(), 1u);
  EXPECT_EQ(q.dropped_shutdown(), 1u);
  EXPECT_EQ(q.dropped(), 2u);

  // Pending events stay poppable after close; then the queue drains out.
  trace::Event e;
  EXPECT_TRUE(q.pop(&e));
  EXPECT_TRUE(q.pop(&e));
  EXPECT_FALSE(q.pop(&e));
}

}  // namespace
}  // namespace home::explore
