#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/trace/event.hpp"
#include "src/trace/thread_registry.hpp"
#include "src/trace/trace_log.hpp"

namespace home::trace {
namespace {

TEST(Event, LocksetDisjointness) {
  EXPECT_TRUE(locksets_disjoint({}, {}));
  EXPECT_TRUE(locksets_disjoint({1, 3}, {2, 4}));
  EXPECT_FALSE(locksets_disjoint({1, 3}, {3, 4}));
  EXPECT_TRUE(locksets_disjoint({5}, {}));
}

TEST(Event, KindAndCallNames) {
  EXPECT_STREQ(event_kind_name(EventKind::kMemWrite), "MemWrite");
  EXPECT_STREQ(mpi_call_type_name(MpiCallType::kRecv), "MPI_Recv");
  EXPECT_STREQ(mpi_call_type_name(MpiCallType::kInitThread), "MPI_Init_thread");
}

TEST(Event, Classifiers) {
  EXPECT_TRUE(is_collective(MpiCallType::kAllreduce));
  EXPECT_FALSE(is_collective(MpiCallType::kSend));
  EXPECT_TRUE(is_probe(MpiCallType::kIprobe));
  EXPECT_TRUE(is_receive(MpiCallType::kIrecv));
  EXPECT_TRUE(is_request_completion(MpiCallType::kTest));
  EXPECT_FALSE(is_request_completion(MpiCallType::kRecv));
}

TEST(Event, ToStringMentionsCallArgs) {
  Event e;
  e.tid = 3;
  e.rank = 1;
  e.kind = EventKind::kMpiCall;
  MpiCallInfo info;
  info.type = MpiCallType::kRecv;
  info.peer = 0;
  info.tag = 7;
  e.mpi = info;
  const std::string s = event_to_string(e);
  EXPECT_NE(s.find("MPI_Recv"), std::string::npos);
  EXPECT_NE(s.find("tag=7"), std::string::npos);
}

TEST(StringTable, InternIsIdempotent) {
  StringTable table;
  const auto a = table.intern("halo.send");
  const auto b = table.intern("halo.send");
  const auto c = table.intern("halo.recv");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.lookup(a), "halo.send");
  EXPECT_EQ(table.lookup(0), "");
}

TEST(TraceLog, StampsMonotonicSeq) {
  TraceLog log;
  Event e;
  const Seq s1 = log.emit(e);
  const Seq s2 = log.emit(e);
  EXPECT_LT(s1, s2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(TraceLog, SortedEventsAreOrdered) {
  TraceLog log;
  Event e;
  for (int i = 0; i < 100; ++i) log.emit(e);
  auto events = log.sorted_events();
  ASSERT_EQ(events.size(), 100u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(TraceLog, ConcurrentEmitIsSafeAndComplete) {
  TraceLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        Event e;
        e.kind = EventKind::kMemWrite;
        log.emit(e);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // All seq stamps distinct.
  auto events = log.sorted_events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_NE(events[i - 1].seq, events[i].seq);
  }
}

TEST(TraceLog, ClearResets) {
  TraceLog log;
  log.emit(Event{});
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(ThreadRegistry, RegistersAndQueriesCurrentThread) {
  ThreadRegistry registry;
  const Tid tid = registry.register_current_thread(kNoTid, 3, true);
  EXPECT_EQ(registry.current_tid(), tid);
  EXPECT_EQ(registry.current_rank(), 3);
  EXPECT_TRUE(registry.current_is_rank_main());
  registry.reset();
  EXPECT_EQ(registry.current_tid(), kNoTid);
}

TEST(ThreadRegistry, PreRegistrationAndBinding) {
  ThreadRegistry registry;
  registry.register_current_thread(kNoTid, 0, true);
  const Tid child = registry.register_thread(0, 0, false);
  EXPECT_EQ(child, 1);
  std::thread worker([&registry, child] {
    registry.bind_current_thread(child);
    EXPECT_EQ(registry.current_tid(), child);
    EXPECT_EQ(registry.current_rank(), 0);
    EXPECT_FALSE(registry.current_is_rank_main());
  });
  worker.join();
  EXPECT_EQ(registry.thread_count(), 2);
}

TEST(ThreadRegistry, InfoOutOfRangeIsEmpty) {
  ThreadRegistry registry;
  EXPECT_EQ(registry.info(42).tid, kNoTid);
}

TEST(ThreadRegistry, DistinctTidsAcrossThreads) {
  ThreadRegistry registry;
  std::vector<Tid> tids(4, kNoTid);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&registry, &tids, i] {
      tids[static_cast<std::size_t>(i)] =
          registry.register_current_thread(kNoTid, i, false);
    });
  }
  for (auto& t : threads) t.join();
  std::sort(tids.begin(), tids.end());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tids[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace home::trace
