// Tests for the future-work extensions: the pthreads-style backend, the
// message-race analysis, and the `omp parallel sections` combined directive.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "src/home/check.hpp"
#include "src/home/html_report.hpp"
#include "src/home/session.hpp"
#include "src/homp/pthreads_shim.hpp"
#include "src/homp/runtime.hpp"
#include "src/sast/analysis.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/simmpi/enforcer.hpp"
#include "src/spec/message_race.hpp"

namespace home {
namespace {

using namespace simmpi;
using spec::ViolationType;

// ------------------------------------------------------------ pthreads shim

TEST(PthreadsShim, RunsAndJoins) {
  std::atomic<int> hits{0};
  {
    homp::Thread worker([&] { hits.fetch_add(1); });
    worker.join();
  }
  EXPECT_EQ(hits.load(), 1);
}

TEST(PthreadsShim, DestructorJoinsUnjoinedThread) {
  std::atomic<int> hits{0};
  { homp::Thread worker([&] { hits.fetch_add(1); }); }
  EXPECT_EQ(hits.load(), 1);
}

TEST(PthreadsShim, EmitsForkJoinEvents) {
  trace::TraceLog log;
  trace::ThreadRegistry registry;
  registry.register_current_thread(trace::kNoTid, 0, true);
  homp::install_instrumentation({&log, &registry});
  {
    homp::Thread worker([] {});
    worker.join();
  }
  homp::clear_instrumentation();
  int forks = 0, joins = 0;
  for (const auto& e : log.sorted_events()) {
    if (e.kind == trace::EventKind::kThreadFork) ++forks;
    if (e.kind == trace::EventKind::kThreadJoin) ++joins;
  }
  EXPECT_EQ(forks, 1);
  EXPECT_EQ(joins, 1);
}

TEST(PthreadsShim, HybridMpiPthreadsViolationDetected) {
  // The Figure-2 bug written with raw threads instead of OpenMP: two
  // manually spawned threads of rank 1 receive with one shared tag.
  CheckConfig cfg;
  cfg.nranks = 2;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const int v = i;
        p.send(&v, 1, Datatype::kInt, 1, 3, kCommWorld, {"pt.send"});
      }
    } else {
      auto receiver = [&] {
        int v = 0;
        p.recv(&v, 1, Datatype::kInt, 0, 3, kCommWorld, nullptr, {"pt.recv"});
      };
      homp::Thread t1(receiver);
      homp::Thread t2(receiver);
      t1.join();
      t2.join();
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kConcurrentRecv))
      << result.report.to_string();
}

TEST(PthreadsShim, JoinedThreadsAreOrderedBeforeLaterCalls) {
  // A joined raw thread's MPI call must not race the main thread's later
  // call (the join edge orders them) — no false positive.
  CheckConfig cfg;
  cfg.nranks = 2;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    const int peer = 1 - p.rank();
    if (p.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const int v = i;
        p.send(&v, 1, Datatype::kInt, peer, 3, kCommWorld);
      }
    } else {
      // Two raw threads, but strictly sequenced: the second is forked only
      // after the first joined, so the join->fork chain orders their receives
      // and the shared tag is fine.
      {
        homp::Thread t1([&] {
          int v;
          p.recv(&v, 1, Datatype::kInt, peer, 3, kCommWorld);
        });
        t1.join();
      }
      homp::Thread t2([&] {
        int v;
        p.recv(&v, 1, Datatype::kInt, peer, 3, kCommWorld);
      });
      t2.join();
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

// ------------------------------------------------------------ message races

TEST(MessageRace, WildcardRecvWithTwoConcurrentSenders) {
  SessionConfig scfg;
  scfg.filter = InstrumentFilter::kAll;  // serial-phase calls matter here.
  Session session(scfg);
  UniverseConfig ucfg;
  ucfg.nranks = 3;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        int v;
        p.recv(&v, 1, Datatype::kInt, kAnySource, 4, kCommWorld, nullptr,
               {"mr.recv"});
      }
    } else {
      const int v = p.rank();
      p.send(&v, 1, Datatype::kInt, 0, 4, kCommWorld, {"mr.send"});
    }
    p.finalize();
  });
  session.detach(universe);

  const auto races = session.message_races();
  ASSERT_FALSE(races.empty());
  EXPECT_EQ(races[0].rank, 0);
  EXPECT_EQ(races[0].sender_ranks, (std::vector<int>{1, 2}));
  EXPECT_NE(races[0].to_string().find("MessageRace"), std::string::npos);
}

TEST(MessageRace, SpecificSourceReceivesAreNotRaces) {
  SessionConfig scfg;
  scfg.filter = InstrumentFilter::kAll;  // serial-phase calls matter here.
  Session session(scfg);
  UniverseConfig ucfg;
  ucfg.nranks = 3;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      for (int src = 1; src <= 2; ++src) {
        int v;
        p.recv(&v, 1, Datatype::kInt, src, 4, kCommWorld);
      }
    } else {
      const int v = p.rank();
      p.send(&v, 1, Datatype::kInt, 0, 4, kCommWorld);
    }
    p.finalize();
  });
  session.detach(universe);
  EXPECT_TRUE(session.message_races().empty());
}

TEST(MessageRace, SingleSenderIsNotARace) {
  SessionConfig scfg;
  scfg.filter = InstrumentFilter::kAll;  // serial-phase calls matter here.
  Session session(scfg);
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      int v;
      p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
    } else {
      const int v = 7;
      p.send(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
    }
    p.finalize();
  });
  session.detach(universe);
  EXPECT_TRUE(session.message_races().empty());
}

TEST(MessageRace, DifferentTagsDoNotRace) {
  SessionConfig scfg;
  scfg.filter = InstrumentFilter::kAll;  // serial-phase calls matter here.
  Session session(scfg);
  UniverseConfig ucfg;
  ucfg.nranks = 3;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      // Wildcard source but a *specific* tag per receive; only one sender
      // uses each tag.
      for (int tag = 1; tag <= 2; ++tag) {
        int v;
        p.recv(&v, 1, Datatype::kInt, kAnySource, tag, kCommWorld);
      }
    } else {
      const int v = p.rank();
      p.send(&v, 1, Datatype::kInt, 0, p.rank(), kCommWorld);
    }
    p.finalize();
  });
  session.detach(universe);
  EXPECT_TRUE(session.message_races().empty());
}

// -------------------------------------------------- thread-level enforcement

TEST(Enforcer, FunneledOffMainThreadAborts) {
  simmpi::ThreadLevelEnforcer enforcer;
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  trace::ThreadRegistry registry;
  ucfg.registry = &registry;
  Universe universe(ucfg);
  universe.hooks().add(&enforcer);
  homp::install_instrumentation({nullptr, &registry});
  auto result = universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kFunneled);
    homp::parallel(2, [&] {
      if (homp::thread_num() == 1) {
        int x = 0, y = 0;
        p.allreduce(&x, &y, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld);
      }
    });
  });
  homp::clear_instrumentation();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].find("MPI_THREAD_FUNNELED"), std::string::npos);
}

TEST(Enforcer, MultipleAllowsWorkerCalls) {
  simmpi::ThreadLevelEnforcer enforcer;
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  trace::ThreadRegistry registry;
  ucfg.registry = &registry;
  Universe universe(ucfg);
  universe.hooks().add(&enforcer);
  homp::install_instrumentation({nullptr, &registry});
  auto result = universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      const int tag = homp::thread_num();
      const int peer = 1 - p.rank();
      int v = tag;
      p.send(&v, 1, Datatype::kInt, peer, tag, kCommWorld);
      p.recv(&v, 1, Datatype::kInt, peer, tag, kCommWorld);
    });
    p.finalize();
  });
  homp::clear_instrumentation();
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(enforcer.checked_calls(), 0u);
}

TEST(Enforcer, MainThreadOnlyProgramPassesUnderFunneled) {
  simmpi::ThreadLevelEnforcer enforcer;
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  trace::ThreadRegistry registry;
  ucfg.registry = &registry;
  Universe universe(ucfg);
  universe.hooks().add(&enforcer);
  homp::install_instrumentation({nullptr, &registry});
  auto result = universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kFunneled);
    p.barrier(kCommWorld);
    p.finalize();
  });
  homp::clear_instrumentation();
  EXPECT_TRUE(result.ok());
}

// ----------------------------------------------------------------- HTML page

TEST(HtmlReport, RendersConfirmedFindings) {
  spec::Violation v;
  v.type = ViolationType::kConcurrentRecv;
  v.callsite1 = "main:10:MPI_Recv";
  v.detail = "two threads receive with source=1 tag=0";
  sast::StaticWarning w;
  w.cls = sast::WarningClass::kConcurrentRecv;
  w.site = "main:10:MPI_Recv";
  const FinalReport merged =
      merge_reports({w}, Report({v}, ReportStats{.trace_events = 42}));

  const std::string html = render_html(merged, ReportStats{.trace_events = 42});
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("ConcurrentRecvViolation"), std::string::npos);
  EXPECT_NE(html.find("confirmed"), std::string::npos);
  EXPECT_NE(html.find("main:10:MPI_Recv"), std::string::npos);
  EXPECT_NE(html.find("trace events: 42"), std::string::npos);
}

TEST(HtmlReport, CleanReportSaysSo) {
  const std::string html = render_html(FinalReport({}), ReportStats{});
  EXPECT_NE(html.find("No thread-safety issues"), std::string::npos);
}

TEST(HtmlReport, EscapesMarkup) {
  spec::Violation v;
  v.type = ViolationType::kProbe;
  v.detail = "a<b & \"c\"";
  const FinalReport merged = merge_reports({}, Report({v}, ReportStats{}));
  const std::string html = render_html(merged, ReportStats{});
  EXPECT_EQ(html.find("a<b"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
}

TEST(HtmlReport, WritesFile) {
  const std::string path = testing::TempDir() + "/home_report.html";
  write_html_report(path, FinalReport({}), ReportStats{});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

// --------------------------------------------- omp parallel sections parsing

TEST(ParallelSections, CombinedDirectiveIsAParallelRegion) {
  const auto analysis = sast::analyze_source(R"(
void f() {
  #pragma omp parallel sections
  {
    #pragma omp section
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
    #pragma omp section
    { MPI_Recv(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, st); }
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
)");
  EXPECT_EQ(analysis.plan.instrumented_calls, 2u);
  EXPECT_EQ(analysis.plan.filtered_calls, 1u);
}

}  // namespace
}  // namespace home
