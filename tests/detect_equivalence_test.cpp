// Equivalence and scaling-infrastructure properties:
//  * the frontier detector and the pairwise detector report identical
//    per-variable `concurrent` verdicts on seeded random traces, in all
//    three DetectorModes, capped and uncapped, serial and parallel,
//  * the frontier's reported pairs are a subset of genuinely racy pairs
//    (soundness of the representatives handed to the matcher),
//  * multi-threaded TraceLog emission loses no events and yields a valid
//    seq total order (strictly increasing, duplicate-free),
//  * StringTable interning is consistent under concurrent use.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/detect/race_detector.hpp"
#include "src/trace/trace_log.hpp"
#include "src/util/rng.hpp"

namespace home::detect {
namespace {

using trace::Event;
using trace::EventKind;

// ------------------------------------------------------ random trace builder

/// A random hybrid-looking trace: several threads interleave reads/writes on
/// a small variable pool under randomly acquired/released locks, with
/// occasional full barriers, fork/join edges, and cross-"rank" message
/// edges.  Locksets are kept consistent (snapshot of currently held locks).
std::vector<Event> random_trace(std::uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  const int threads = 2 + static_cast<int>(rng.next_below(4));   // 2..5
  const int vars = 3 + static_cast<int>(rng.next_below(6));      // 3..8
  const int locks = 1 + static_cast<int>(rng.next_below(3));     // 1..3
  const int steps = 200 + static_cast<int>(rng.next_below(600));

  std::vector<std::vector<trace::ObjId>> held(
      static_cast<std::size_t>(threads));
  std::vector<Event> events;
  trace::Seq seq = 1;
  trace::ObjId next_msg = 7000;
  std::vector<trace::ObjId> in_flight;  // sent but not yet received.

  auto emit = [&](trace::Tid tid, EventKind kind, trace::ObjId obj,
                  std::uint64_t aux = 0) {
    Event e;
    e.seq = seq++;
    e.tid = tid;
    e.kind = kind;
    e.obj = obj;
    e.aux = aux;
    e.locks_held = held[static_cast<std::size_t>(tid)];
    std::sort(e.locks_held.begin(), e.locks_held.end());
    events.push_back(std::move(e));
  };

  for (int step = 0; step < steps; ++step) {
    const auto tid = static_cast<trace::Tid>(rng.next_below(
        static_cast<std::uint64_t>(threads)));
    auto& mine = held[static_cast<std::size_t>(tid)];
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 55) {
      // Access a random variable.
      const trace::ObjId var = 100 + rng.next_below(
          static_cast<std::uint64_t>(vars));
      emit(tid, rng.next_bool(0.6) ? EventKind::kMemWrite : EventKind::kMemRead,
           var);
    } else if (roll < 70) {
      // Acquire a lock not already held.
      const trace::ObjId lock = 500 + rng.next_below(
          static_cast<std::uint64_t>(locks));
      if (std::find(mine.begin(), mine.end(), lock) == mine.end()) {
        emit(tid, EventKind::kLockAcquire, lock);
        mine.push_back(lock);
      }
    } else if (roll < 85) {
      // Release a random held lock.
      if (!mine.empty()) {
        const std::size_t pick = rng.next_below(mine.size());
        const trace::ObjId lock = mine[pick];
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
        emit(tid, EventKind::kLockRelease, lock);
      }
    } else if (roll < 92) {
      // Message edge: send now, matching recv from another thread later.
      if (rng.next_bool(0.5) || in_flight.empty()) {
        const trace::ObjId msg = next_msg++;
        emit(tid, EventKind::kMsgSend, msg);
        in_flight.push_back(msg);
      } else {
        const std::size_t pick = rng.next_below(in_flight.size());
        const trace::ObjId msg = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
        emit(tid, EventKind::kMsgRecv, msg);
      }
    } else if (roll < 97) {
      // Full barrier: every thread arrives.
      const trace::ObjId barrier = 9000 + static_cast<trace::ObjId>(step);
      for (trace::Tid t = 0; t < threads; ++t) {
        emit(t, EventKind::kBarrier, barrier,
             static_cast<std::uint64_t>(threads));
      }
    }
    // Remaining rolls: no event (schedule gap).
  }
  return events;
}

std::map<trace::ObjId, bool> concurrent_map(const ConcurrencyReport& report) {
  std::map<trace::ObjId, bool> out;
  for (const auto& [var, verdict] : report.verdicts()) {
    out[var] = verdict.concurrent;
  }
  return out;
}

// --------------------------------------------- frontier == pairwise verdicts

class DetectorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DetectorEquivalence, FrontierMatchesPairwiseVerdicts) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<Event> events = random_trace(seed);
  for (const DetectorMode mode :
       {DetectorMode::kHybrid, DetectorMode::kLocksetOnly,
        DetectorMode::kHbOnly}) {
    // Sweep the knobs that must not change the verdict: pair cap on/off and
    // serial vs parallel per-variable analysis.
    for (const std::size_t cap : {std::size_t{64}, std::size_t{0}}) {
      RaceDetectorConfig frontier;
      frontier.mode = mode;
      frontier.max_pairs_per_var = cap;
      frontier.algo = DetectorAlgo::kFrontier;
      frontier.analysis_threads = (seed % 2 == 0) ? 1 : 4;

      RaceDetectorConfig pairwise = frontier;
      pairwise.algo = DetectorAlgo::kPairwise;

      const auto frontier_verdicts =
          concurrent_map(RaceDetector(frontier).analyze(events));
      const auto pairwise_verdicts =
          concurrent_map(RaceDetector(pairwise).analyze(events));
      EXPECT_EQ(frontier_verdicts, pairwise_verdicts)
          << "mode=" << detector_mode_name(mode) << " cap=" << cap
          << " seed=" << seed;
    }
  }
}

// 100+ seeded random traces (x 3 modes x 2 caps each).
INSTANTIATE_TEST_SUITE_P(Seeds, DetectorEquivalence, ::testing::Range(0, 104));

TEST(DetectorEquivalence, FrontierPairsAreGenuinelyRacy) {
  // Soundness of the representatives: every pair the frontier reports must
  // satisfy the mode's racy predicate (the matcher builds violations out of
  // these).
  const std::vector<Event> events = random_trace(421);
  for (const DetectorMode mode :
       {DetectorMode::kHybrid, DetectorMode::kLocksetOnly,
        DetectorMode::kHbOnly}) {
    RaceDetectorConfig cfg;
    cfg.mode = mode;
    cfg.max_pairs_per_var = 0;
    cfg.algo = DetectorAlgo::kFrontier;
    const ConcurrencyReport report = RaceDetector(cfg).analyze(events);
    for (const auto& [var, verdict] : report.verdicts()) {
      for (const ConcurrentPair& pair : verdict.pairs) {
        EXPECT_LT(pair.first, pair.second);
        EXPECT_TRUE(accesses_racy(mode, report.hb(), pair.first, pair.second))
            << "mode=" << detector_mode_name(mode) << " var=" << var;
        EXPECT_EQ(report.hb().events()[pair.first].obj, var);
        EXPECT_EQ(report.hb().events()[pair.second].obj, var);
      }
    }
  }
}

TEST(DetectorEquivalence, ParallelAnalysisIsDeterministic) {
  // Same trace, different worker counts: byte-identical verdicts and pairs.
  std::vector<Event> events;
  util::Rng rng(99);
  for (int i = 0; i < 6000; ++i) {  // above kParallelAnalysisThreshold.
    Event e;
    e.seq = static_cast<trace::Seq>(i + 1);
    e.tid = static_cast<trace::Tid>(rng.next_below(6));
    e.kind = trace::EventKind::kMemWrite;
    e.obj = 100 + rng.next_below(40);
    if (rng.next_bool(0.5)) e.locks_held = {500};
    events.push_back(std::move(e));
  }
  auto run = [&](std::size_t workers) {
    RaceDetectorConfig cfg;
    cfg.analysis_threads = workers;
    return RaceDetector(cfg).analyze(events);
  };
  const ConcurrencyReport serial = run(1);
  const ConcurrencyReport parallel = run(8);
  ASSERT_EQ(serial.verdicts().size(), parallel.verdicts().size());
  for (const auto& [var, verdict] : serial.verdicts()) {
    const VariableVerdict* other = parallel.verdict(var);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(verdict.concurrent, other->concurrent);
    ASSERT_EQ(verdict.pairs.size(), other->pairs.size());
    for (std::size_t k = 0; k < verdict.pairs.size(); ++k) {
      EXPECT_EQ(verdict.pairs[k].first, other->pairs[k].first);
      EXPECT_EQ(verdict.pairs[k].second, other->pairs[k].second);
    }
  }
}

// ------------------------------------------------- sharded TraceLog stress

TEST(TraceLogStress, ConcurrentEmitLosesNothingAndSeqIsTotalOrder) {
  trace::TraceLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::Event e;
        e.tid = t;
        e.kind = trace::EventKind::kMemWrite;
        e.obj = static_cast<trace::ObjId>(t * kPerThread + i);
        log.emit(std::move(e));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  const std::vector<trace::Event> events = log.sorted_events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));

  // Valid total order: strictly increasing seq (hence duplicate-free).
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LT(events[i - 1].seq, events[i].seq) << "at index " << i;
  }
  // Consistent with each thread's program order, and nothing dropped or
  // duplicated: per thread, the payloads appear exactly once, in order.
  std::vector<std::vector<trace::ObjId>> per_thread(kThreads);
  for (const trace::Event& e : events) {
    per_thread[static_cast<std::size_t>(e.tid)].push_back(e.obj);
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[static_cast<std::size_t>(t)].size(),
              static_cast<std::size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(per_thread[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                static_cast<trace::ObjId>(t * kPerThread + i));
    }
  }
}

TEST(TraceLogStress, ClearKeepsShardsUsableAndResetsSeq) {
  trace::TraceLog log;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&log] {
      for (int i = 0; i < 100; ++i) log.emit(trace::Event{});
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(log.size(), 400u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.emit(trace::Event{}), 1u);  // seq restarts.
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceLogStress, ConcurrentInternIsConsistent) {
  trace::TraceLog log;
  constexpr int kThreads = 6;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, &ids, t] {
      for (int i = 0; i < 200; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(
            log.strings().intern("label." + std::to_string(i % 50)));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // 50 distinct labels + the empty label = 51 entries; every thread resolved
  // each label to the same id.
  EXPECT_EQ(log.strings().size(), 51u);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 200; ++i) {
      const std::uint32_t id = ids[static_cast<std::size_t>(t)][
          static_cast<std::size_t>(i)];
      EXPECT_EQ(log.strings().lookup(id), "label." + std::to_string(i % 50));
    }
  }
}

}  // namespace
}  // namespace home::detect
