// Clock-engine equivalence (ISSUE-6 acceptance): the epoch engine and the
// retained full-vector engine must be *verdict-equivalent* everywhere —
//  * post-mortem: identical per-variable verdicts AND identical reported
//    pair lists across all DetectorModes, both sweep algorithms, capped and
//    uncapped, on seeded random traces,
//  * online: identical streamed pair sequences at every retirement cadence,
//    and identical end-to-end violation-key sets through the OnlineAnalyzer,
//  * the supporting structures behave: FlatMap matches std::map under a
//    randomized op sequence, and ClockArena dedupes content-equal clocks
//    (trailing-zero padding included) and compacts unreferenced entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/app.hpp"
#include "src/detect/clock_arena.hpp"
#include "src/detect/flat_map.hpp"
#include "src/detect/incremental.hpp"
#include "src/detect/race_detector.hpp"
#include "src/detect/stamp.hpp"
#include "src/home/check.hpp"
#include "src/spec/violations.hpp"
#include "src/util/rng.hpp"

namespace home::detect {
namespace {

using trace::Event;
using trace::EventKind;

// ------------------------------------------------------ random trace builder

/// Same shape as detect_equivalence_test's builder: threads interleave
/// accesses on a small variable pool under locks, with barriers and
/// cross-rank message edges — enough sync-edge variety to exercise every
/// IncrementalHb path the epoch lemma relies on.
std::vector<Event> random_trace(std::uint64_t seed) {
  util::Rng rng(seed * 0xD1B54A32D192ED03ULL + 29);
  const int threads = 2 + static_cast<int>(rng.next_below(4));   // 2..5
  const int vars = 3 + static_cast<int>(rng.next_below(6));      // 3..8
  const int locks = 1 + static_cast<int>(rng.next_below(3));     // 1..3
  const int steps = 200 + static_cast<int>(rng.next_below(600));

  std::vector<std::vector<trace::ObjId>> held(
      static_cast<std::size_t>(threads));
  std::vector<Event> events;
  trace::Seq seq = 1;
  trace::ObjId next_msg = 7000;
  std::vector<trace::ObjId> in_flight;

  auto emit = [&](trace::Tid tid, EventKind kind, trace::ObjId obj,
                  std::uint64_t aux = 0) {
    Event e;
    e.seq = seq++;
    e.tid = tid;
    e.kind = kind;
    e.obj = obj;
    e.aux = aux;
    e.locks_held = held[static_cast<std::size_t>(tid)];
    std::sort(e.locks_held.begin(), e.locks_held.end());
    events.push_back(std::move(e));
  };

  for (int step = 0; step < steps; ++step) {
    const auto tid = static_cast<trace::Tid>(
        rng.next_below(static_cast<std::uint64_t>(threads)));
    auto& mine = held[static_cast<std::size_t>(tid)];
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 55) {
      const trace::ObjId var =
          100 + rng.next_below(static_cast<std::uint64_t>(vars));
      emit(tid,
           rng.next_bool(0.6) ? EventKind::kMemWrite : EventKind::kMemRead,
           var);
    } else if (roll < 70) {
      const trace::ObjId lock =
          500 + rng.next_below(static_cast<std::uint64_t>(locks));
      if (std::find(mine.begin(), mine.end(), lock) == mine.end()) {
        emit(tid, EventKind::kLockAcquire, lock);
        mine.push_back(lock);
      }
    } else if (roll < 85) {
      if (!mine.empty()) {
        const std::size_t pick = rng.next_below(mine.size());
        const trace::ObjId lock = mine[pick];
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
        emit(tid, EventKind::kLockRelease, lock);
      }
    } else if (roll < 92) {
      if (rng.next_bool(0.5) || in_flight.empty()) {
        const trace::ObjId msg = next_msg++;
        emit(tid, EventKind::kMsgSend, msg);
        in_flight.push_back(msg);
      } else {
        const std::size_t pick = rng.next_below(in_flight.size());
        const trace::ObjId msg = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
        emit(tid, EventKind::kMsgRecv, msg);
      }
    } else if (roll < 97) {
      const trace::ObjId barrier = 9000 + static_cast<trace::ObjId>(step);
      for (trace::Tid t = 0; t < threads; ++t) {
        emit(t, EventKind::kBarrier, barrier,
             static_cast<std::uint64_t>(threads));
      }
    }
  }
  return events;
}

int max_tid(const std::vector<Event>& events) {
  int m = 0;
  for (const Event& e : events) m = std::max(m, static_cast<int>(e.tid));
  return m;
}

// ----------------------------------------------- post-mortem pair equality

using SeqPair = std::pair<trace::Seq, trace::Seq>;

std::map<trace::ObjId, std::vector<SeqPair>> report_pairs(
    const ConcurrencyReport& report) {
  std::map<trace::ObjId, std::vector<SeqPair>> out;
  for (const auto& [var, verdict] : report.verdicts()) {
    auto& pairs = out[var];
    for (const ConcurrentPair& p : verdict.pairs) {
      pairs.emplace_back(report.hb().events()[p.first].seq,
                         report.hb().events()[p.second].seq);
    }
  }
  return out;
}

class ClockEngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ClockEngineEquivalence, PostMortemVerdictsAndPairsMatch) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<Event> events = random_trace(seed);
  for (const DetectorMode mode :
       {DetectorMode::kHybrid, DetectorMode::kLocksetOnly,
        DetectorMode::kHbOnly}) {
    for (const DetectorAlgo algo :
         {DetectorAlgo::kFrontier, DetectorAlgo::kPairwise}) {
      for (const std::size_t cap : {std::size_t{64}, std::size_t{0}}) {
        RaceDetectorConfig epoch;
        epoch.mode = mode;
        epoch.algo = algo;
        epoch.max_pairs_per_var = cap;
        epoch.analysis_threads = 1;
        epoch.clock = ClockEngine::kEpoch;
        RaceDetectorConfig vector = epoch;
        vector.clock = ClockEngine::kVector;

        const ConcurrencyReport er = RaceDetector(epoch).analyze(events);
        const ConcurrencyReport vr = RaceDetector(vector).analyze(events);
        // Identical pair lists implies identical verdicts, pair budgets, and
        // representative choices — the engines must be indistinguishable to
        // every downstream consumer.
        EXPECT_EQ(report_pairs(er), report_pairs(vr))
            << "mode=" << detector_mode_name(mode)
            << " algo=" << detector_algo_name(algo) << " cap=" << cap
            << " seed=" << seed;
        for (const auto& [var, verdict] : er.verdicts()) {
          const VariableVerdict* other = vr.verdict(var);
          ASSERT_NE(other, nullptr);
          EXPECT_EQ(verdict.concurrent, other->concurrent) << "var=" << var;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockEngineEquivalence,
                         ::testing::Range(0, 60));

// --------------------------------------------------- streamed pair equality

std::map<trace::ObjId, std::vector<SeqPair>> streamed_pairs(
    const std::vector<Event>& events, const RaceDetectorConfig& cfg,
    std::size_t retire_every) {
  HappensBeforeConfig hb_cfg;
  hb_cfg.lock_edges = (cfg.mode == DetectorMode::kHbOnly);
  IncrementalHb hb(hb_cfg);
  for (int t = 0; t <= max_tid(events); ++t) {
    hb.declare_thread(static_cast<trace::Tid>(t));
  }
  IncrementalFrontier frontier(cfg);

  std::map<trace::ObjId, std::vector<SeqPair>> out;
  std::vector<IncrementalFrontier::PairHit> hits;
  std::size_t since_retire = 0;
  for (const Event& e : events) {
    const StampView stamp = hb.advance(e);
    if (e.is_access()) {
      auto rec = std::make_shared<OnlineAccess>();
      rec->seq = e.seq;
      rec->tid = e.tid;
      rec->write = e.is_write();
      rec->locks = e.locks_held;
      hits.clear();
      frontier.on_access(e.obj, std::move(rec), stamp, &hits);
      auto& pairs = out[e.obj];
      for (const auto& hit : hits) {
        pairs.emplace_back(hit.first->seq, hit.second->seq);
      }
    }
    if (retire_every != 0 && ++since_retire >= retire_every) {
      since_retire = 0;
      VectorClock wm;
      if (hb.watermark(&wm)) {
        frontier.retire(wm);
        hb.retire(wm);
      }
    }
  }
  return out;
}

class ClockEngineStreaming : public ::testing::TestWithParam<int> {};

TEST_P(ClockEngineStreaming, StreamedPairsMatchAtEveryRetireCadence) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<Event> events = random_trace(seed);
  for (const DetectorMode mode :
       {DetectorMode::kHybrid, DetectorMode::kHbOnly}) {
    RaceDetectorConfig epoch;
    epoch.mode = mode;
    epoch.analysis_threads = 1;
    epoch.clock = ClockEngine::kEpoch;
    RaceDetectorConfig vector = epoch;
    vector.clock = ClockEngine::kVector;
    for (const std::size_t cadence :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      EXPECT_EQ(streamed_pairs(events, epoch, cadence),
                streamed_pairs(events, vector, cadence))
          << "mode=" << detector_mode_name(mode) << " cadence=" << cadence
          << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockEngineStreaming, ::testing::Range(0, 24));

TEST(ClockEngineStreaming, EpochRecordsPromoteOnlyOnConcurrency) {
  // A racy trace: promotions happen, but only for records that proved racy;
  // epoch-path comparisons dominate.
  const std::vector<Event> events = random_trace(7);
  RaceDetectorConfig cfg;
  cfg.analysis_threads = 1;
  cfg.clock = ClockEngine::kEpoch;
  HappensBeforeConfig hb_cfg;
  IncrementalHb hb(hb_cfg);
  IncrementalFrontier frontier(cfg);
  std::vector<IncrementalFrontier::PairHit> hits;
  std::size_t pairs = 0;
  for (const Event& e : events) {
    const StampView stamp = hb.advance(e);
    if (!e.is_access()) continue;
    auto rec = std::make_shared<OnlineAccess>();
    rec->seq = e.seq;
    rec->tid = e.tid;
    rec->write = e.is_write();
    rec->locks = e.locks_held;
    hits.clear();
    frontier.on_access(e.obj, std::move(rec), stamp, &hits);
    pairs += hits.size();
    for (const auto& hit : hits) {
      // The incoming (younger) record of a racy pair is always promoted.
      EXPECT_TRUE(hit.second->stamp.has_clock());
    }
  }
  ASSERT_GT(pairs, 0u) << "trace should be racy";
  EXPECT_GT(frontier.epoch_hits(), 0u);
  EXPECT_GT(frontier.epoch_promotions(), 0u);
  // Promotions are bounded by racy records, never the whole stream.
  EXPECT_LE(frontier.epoch_promotions(), pairs);
  EXPECT_EQ(frontier.clock_allocs(), 0u);  // no private copies under kEpoch.
}

// -------------------------------------------- end-to-end online equivalence

std::set<std::string> key_set(const Report& report) {
  std::set<std::string> keys;
  for (const spec::Violation& v : report.violations()) {
    keys.insert(spec::violation_key(v));
  }
  return keys;
}

TEST(ClockEngineOnline, AnalyzerViolationKeySetsMatchAcrossEngines) {
  // The full streaming pipeline (Session in kOnline mode) on the paper's
  // injected-violation app: both engines must report the same violation-key
  // set and reconcile cleanly against the post-mortem pass.
  const apps::AppConfig app = apps::paper_config(apps::AppKind::kLU, 2);
  auto rank_main = [&app](simmpi::Process& p) { apps::run_app_rank(app, p); };

  auto run = [&](ClockEngine engine, std::size_t retire_interval) {
    CheckConfig cfg;
    cfg.nranks = app.nranks;
    cfg.nthreads = app.nthreads;
    cfg.block_timeout_ms = app.block_timeout_ms;
    cfg.session.mode = AnalysisMode::kOnline;
    cfg.session.clock_engine = engine;
    cfg.session.online.retire_interval = retire_interval;
    return check_program(cfg, rank_main);
  };

  for (const std::size_t retire : {std::size_t{64}, std::size_t{1024}}) {
    const CheckResult epoch = run(ClockEngine::kEpoch, retire);
    const CheckResult vector = run(ClockEngine::kVector, retire);
    ASSERT_TRUE(epoch.run.ok());
    ASSERT_TRUE(vector.run.ok());
    EXPECT_TRUE(epoch.reconciliation.ran);
    EXPECT_TRUE(epoch.reconciliation.equivalent) << "retire=" << retire;
    EXPECT_TRUE(vector.reconciliation.equivalent) << "retire=" << retire;
    EXPECT_EQ(key_set(epoch.report), key_set(vector.report))
        << "retire=" << retire;
    EXPECT_FALSE(key_set(epoch.report).empty());
  }
}

// ------------------------------------------------------------- ClockArena

TEST(ClockArena, InternDedupesAndNormalizesTrailingZeros) {
  ClockArena arena;
  const std::uint64_t a[] = {3, 5, 0, 0};
  const std::uint64_t b[] = {3, 5};
  const std::uint64_t c[] = {3, 5, 7};
  const ClockRef ra = arena.intern(a, 4);
  const ClockRef rb = arena.intern(b, 2);
  const ClockRef rc = arena.intern(c, 3);
  EXPECT_EQ(ra.get(), rb.get());  // padding-insensitive: one allocation.
  EXPECT_NE(ra.get(), rc.get());
  EXPECT_EQ(ra->size(), 2u);  // stored normalized.
  EXPECT_EQ(ra->get(0), 3u);
  EXPECT_EQ(ra->get(1), 5u);
  EXPECT_EQ(ra->get(9), 0u);  // out-of-range reads as zero.
  EXPECT_EQ(arena.resident_clocks(), 2u);
}

TEST(ClockArena, CompactDropsOnlyUnreferencedClocks) {
  ClockArena arena;
  const std::uint64_t a[] = {1, 2};
  const std::uint64_t b[] = {9};
  ClockRef keep = arena.intern(a, 2);
  arena.intern(b, 1);  // ref dropped immediately; only the table holds it.
  ASSERT_EQ(arena.resident_clocks(), 2u);
  EXPECT_EQ(arena.compact(), 1u);  // only the unreferenced entry goes.
  EXPECT_EQ(arena.resident_clocks(), 1u);
  // The survivor is still served from the table.
  EXPECT_EQ(arena.intern(a, 2).get(), keep.get());
}

TEST(ClockArena, ConcurrentInternDedupesAcrossShards) {
  // The intern table is sharded by content hash; racing threads interning
  // the same clocks must still converge on one canonical instance each.
  ClockArena arena;
  constexpr int kThreads = 8;
  constexpr int kClocks = 64;
  std::vector<std::vector<ClockRef>> refs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &refs, t] {
      for (int i = 0; i < kClocks; ++i) {
        const std::uint64_t c[3] = {static_cast<std::uint64_t>(i),
                                    static_cast<std::uint64_t>(i * 7 + 1),
                                    static_cast<std::uint64_t>(i % 5)};
        refs[static_cast<std::size_t>(t)].push_back(arena.intern(c, 3));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    for (int i = 0; i < kClocks; ++i) {
      EXPECT_EQ(refs[0][static_cast<std::size_t>(i)].get(),
                refs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
                    .get());
    }
  }
  EXPECT_EQ(arena.resident_clocks(), static_cast<std::size_t>(kClocks));
}

TEST(ClockArena, EmptyClockInterns) {
  ClockArena arena;
  const std::uint64_t zeros[] = {0, 0, 0};
  const ClockRef r1 = arena.intern(zeros, 3);
  const ClockRef r2 = arena.intern(nullptr, 0);
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(r1->size(), 0u);
}

// ---------------------------------------------------------------- FlatMap

TEST(FlatMap, RandomizedOpsMatchStdMap) {
  util::Rng rng(1234);
  FlatMap<std::uint64_t> flat;
  std::map<trace::ObjId, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const trace::ObjId key = rng.next_below(200);  // dense enough to collide.
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 50) {
      const std::uint64_t v = rng.next_below(1000);
      flat[key] = v;
      ref[key] = v;
    } else if (roll < 75) {
      EXPECT_EQ(flat.erase(key), ref.erase(key) > 0) << "op " << op;
    } else {
      const std::uint64_t* got = flat.find(key);
      auto it = ref.find(key);
      ASSERT_EQ(got != nullptr, it != ref.end()) << "op " << op;
      if (got != nullptr) {
        EXPECT_EQ(*got, it->second) << "op " << op;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << op;
  }
  // Full-content check via iteration.
  std::map<trace::ObjId, std::uint64_t> dumped;
  flat.for_each([&dumped](trace::ObjId k, const std::uint64_t& v) {
    dumped[k] = v;
  });
  EXPECT_EQ(dumped, ref);
}

TEST(FlatMap, EraseIfMatchesStdMapSemantics) {
  util::Rng rng(77);
  FlatMap<std::uint64_t> flat;
  std::map<trace::ObjId, std::uint64_t> ref;
  for (int i = 0; i < 500; ++i) {
    const trace::ObjId key = rng.next_below(300);
    const std::uint64_t v = rng.next_below(10);
    flat[key] = v;
    ref[key] = v;
  }
  const std::size_t removed = flat.erase_if(
      [](trace::ObjId, const std::uint64_t& v) { return v % 3 == 0; });
  std::size_t ref_removed = 0;
  for (auto it = ref.begin(); it != ref.end();) {
    if (it->second % 3 == 0) {
      it = ref.erase(it);
      ++ref_removed;
    } else {
      ++it;
    }
  }
  EXPECT_EQ(removed, ref_removed);
  std::map<trace::ObjId, std::uint64_t> dumped;
  flat.for_each([&dumped](trace::ObjId k, const std::uint64_t& v) {
    dumped[k] = v;
  });
  EXPECT_EQ(dumped, ref);
}

// ------------------------------------------------------------------ Stamp

TEST(Stamp, EpochLeqAgainstLaterViewAndWatermark) {
  // Build a real two-thread history through IncrementalHb and verify the
  // epoch answers match full-clock answers for a retained stamp.
  IncrementalHb hb;
  Event w1;
  w1.seq = 1;
  w1.tid = 0;
  w1.kind = EventKind::kMemWrite;
  w1.obj = 100;
  const StampView v1 = hb.advance(w1);
  const Stamp epoch = Stamp::epoch(v1);
  const Stamp full = Stamp::full_copy(v1);
  const VectorClock c1 = v1.to_clock();

  // Unsynchronized second thread: not ordered.
  Event w2;
  w2.seq = 2;
  w2.tid = 1;
  w2.kind = EventKind::kMemWrite;
  w2.obj = 100;
  const StampView v2 = hb.advance(w2);
  EXPECT_FALSE(epoch.leq_later(v2));
  EXPECT_FALSE(full.leq_later(v2));
  EXPECT_TRUE(stamp_concurrent_full(full, v2));

  // Synchronize via a message edge: now ordered.
  Event send;
  send.seq = 3;
  send.tid = 0;
  send.kind = EventKind::kMsgSend;
  send.obj = 7000;
  hb.advance(send);
  Event recv;
  recv.seq = 4;
  recv.tid = 1;
  recv.kind = EventKind::kMsgRecv;
  recv.obj = 7000;
  const StampView v4 = hb.advance(recv);
  EXPECT_TRUE(epoch.leq_later(v4));
  EXPECT_TRUE(full.leq_later(v4));
  EXPECT_FALSE(stamp_concurrent_full(full, v4));

  // Watermark form: epoch vs the meet of both live clocks.
  VectorClock wm;
  ASSERT_TRUE(hb.watermark(&wm));
  EXPECT_EQ(epoch.leq(wm), full.leq(wm));
  EXPECT_EQ(epoch.leq(c1), true);  // its own clock dominates it.

  EXPECT_EQ(epoch.clock_bytes(), 0u);
  EXPECT_GT(full.clock_bytes(), 0u);
}

}  // namespace
}  // namespace home::detect
