// Second-round edge cases across the substrates: matching precedence,
// reduction operators, communicator corner cases, worksharing corner cases,
// parser additions (do-while/switch), logging, and the semantic-preservation
// property that instrumentation must not perturb the computation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/baselines/itc.hpp"
#include "src/baselines/marmot.hpp"
#include "src/home/session.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/worksharing.hpp"
#include "src/sast/analysis.hpp"
#include "src/simmpi/universe.hpp"
#include "src/spec/message_race.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace home {
namespace {

using namespace simmpi;

UniverseConfig config(int nranks, int timeout_ms = 5000) {
  UniverseConfig cfg;
  cfg.nranks = nranks;
  cfg.block_timeout_ms = timeout_ms;
  return cfg;
}

// ------------------------------------------------------- matching precedence

TEST(Matching, FirstPostedReceiveWins) {
  // Two posted receives both match an incoming message; MPI requires the
  // first-posted one to receive it.
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      int a = -1, b = -1;
      Request first = p.irecv(&a, 1, Datatype::kInt, 1, 5, kCommWorld);
      Request second = p.irecv(&b, 1, Datatype::kInt, kAnySource, kAnyTag,
                               kCommWorld);
      p.barrier(kCommWorld);
      p.wait(first);
      EXPECT_EQ(a, 99);
      EXPECT_FALSE(second.state()->done());
      // Drain the second with another message.
      p.barrier(kCommWorld);
      p.wait(second);
      EXPECT_EQ(b, 100);
    } else {
      p.barrier(kCommWorld);
      int v = 99;
      p.send(&v, 1, Datatype::kInt, 0, 5, kCommWorld);
      p.barrier(kCommWorld);
      v = 100;
      p.send(&v, 1, Datatype::kInt, 0, 6, kCommWorld);
    }
  });
}

TEST(Matching, UnexpectedMessagesMatchInArrivalOrder) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 1) {
      for (int i = 0; i < 3; ++i) p.send(&i, 1, Datatype::kInt, 0, 7, kCommWorld);
      p.barrier(kCommWorld);
    } else {
      p.barrier(kCommWorld);  // all three are now unexpected.
      for (int expect = 0; expect < 3; ++expect) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, kAnySource, 7, kCommWorld);
        EXPECT_EQ(v, expect);
      }
    }
  });
}

TEST(Matching, SelfSendCompletes) {
  Universe uni(config(1));
  auto result = uni.run([&](Process& p) {
    int out = 0;
    Request r = p.irecv(&out, 1, Datatype::kInt, 0, 0, kCommWorld);
    const int v = 41;
    p.send(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
    p.wait(r);
    EXPECT_EQ(out, 41);
  });
  EXPECT_TRUE(result.ok());
}

// ------------------------------------------------------------ reduction ops

TEST(Reduce, ProdAndMinOperators) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    const long mine = p.rank() + 2;  // 2, 3, 4.
    long prod = 0;
    p.allreduce(&mine, &prod, 1, Datatype::kLong, ReduceOp::kProd, kCommWorld);
    EXPECT_EQ(prod, 24);
    const float fmine = static_cast<float>(10 - p.rank());
    float fmin = 0;
    p.allreduce(&fmine, &fmin, 1, Datatype::kFloat, ReduceOp::kMin, kCommWorld);
    EXPECT_FLOAT_EQ(fmin, 8.0f);
  });
}

TEST(Reduce, VectorReduction) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    const int mine[3] = {p.rank(), 10 * p.rank(), 1};
    int sum[3] = {0, 0, 0};
    p.allreduce(mine, sum, 3, Datatype::kInt, ReduceOp::kSum, kCommWorld);
    EXPECT_EQ(sum[0], 1);
    EXPECT_EQ(sum[1], 10);
    EXPECT_EQ(sum[2], 2);
  });
}

TEST(Reduce, UntypedDataRejected) {
  Universe uni(config(2));
  auto result = uni.run([&](Process& p) {
    char c = 'x', out = 0;
    p.allreduce(&c, &out, 1, Datatype::kChar, ReduceOp::kSum, kCommWorld);
  });
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------ communicator corners

TEST(Comms, SplitSingletonColors) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    // Every rank its own color: three singleton communicators.
    Comm mine = p.comm_split(kCommWorld, p.rank(), 0);
    EXPECT_EQ(p.comm_size(mine), 1);
    EXPECT_EQ(p.comm_rank(mine), 0);
    int v = p.rank(), sum = -1;
    p.allreduce(&v, &sum, 1, Datatype::kInt, ReduceOp::kSum, mine);
    EXPECT_EQ(sum, p.rank());
  });
}

TEST(Comms, NestedSplitOfSplit) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    Comm half = p.comm_split(kCommWorld, p.rank() / 2, p.rank());
    ASSERT_EQ(p.comm_size(half), 2);
    Comm solo = p.comm_split(half, p.comm_rank(half), 0);
    EXPECT_EQ(p.comm_size(solo), 1);
  });
}

// -------------------------------------------------------- worksharing corners

TEST(ForRange, DynamicChunkLargerThanRange) {
  std::atomic<int> count{0};
  homp::ForOpts opts;
  opts.schedule = homp::Schedule::kDynamic;
  opts.chunk = 100;
  homp::parallel(3, [&] {
    homp::for_range(0, 5, [&](int) { count.fetch_add(1); }, opts);
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(ForRange, NowaitSkipsBarrier) {
  // With nowait, a fast thread may pass the construct while others still
  // iterate; the explicit barrier afterwards re-syncs. Just assert full
  // coverage and termination.
  std::atomic<int> count{0};
  homp::ForOpts opts;
  opts.nowait = true;
  homp::parallel(4, [&] {
    homp::for_range(0, 64, [&](int) { count.fetch_add(1); }, opts);
    homp::barrier();
    EXPECT_EQ(count.load(), 64);
  });
}

TEST(Sections, NowaitVariant) {
  std::atomic<int> ran{0};
  homp::parallel(2, [&] {
    homp::sections({[&] { ran.fetch_add(1); }, [&] { ran.fetch_add(1); }},
                   /*nowait=*/true);
    homp::barrier();
  });
  EXPECT_EQ(ran.load(), 2);
}

// ----------------------------------------------------------------- reductions

TEST(Reduction, ForRangeSumMatchesSerial) {
  double expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * 0.5;
  homp::parallel(4, [&] {
    const double sum =
        homp::for_range_sum(0, 100, [](int i) { return i * 0.5; });
    EXPECT_DOUBLE_EQ(sum, expected);  // integer-valued halves: exact.
  });
}

TEST(Reduction, EveryThreadSeesTheCombinedValue) {
  std::atomic<int> agree{0};
  homp::parallel(3, [&] {
    const double sum = homp::for_range_sum(0, 10, [](int) { return 1.0; });
    if (sum == 10.0) agree.fetch_add(1);
  });
  EXPECT_EQ(agree.load(), 3);
}

TEST(Reduction, MaxViaCustomCombine) {
  homp::parallel(4, [&] {
    const double maxval = homp::for_range_reduce(
        0, 50, -1e300,
        [](int i, double acc) { return std::max(acc, static_cast<double>(i % 13)); },
        [](double a, double b) { return std::max(a, b); });
    EXPECT_DOUBLE_EQ(maxval, 12.0);
  });
}

TEST(Reduction, SerialOutsideParallel) {
  const double sum = homp::for_range_sum(0, 5, [](int i) { return i; });
  EXPECT_DOUBLE_EQ(sum, 10.0);
}

TEST(Reduction, RepeatedConstructsIndependent) {
  homp::parallel(2, [&] {
    for (int round = 0; round < 3; ++round) {
      const double sum = homp::for_range_sum(0, 4, [](int) { return 1.0; });
      EXPECT_DOUBLE_EQ(sum, 4.0);
    }
  });
}

// ----------------------------------------------------------- gatherv/scatterv

TEST(Collectives, GathervVariableCounts) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    // Rank r contributes r+1 values: [r, r, ...].
    std::vector<int> mine(static_cast<std::size_t>(p.rank() + 1), p.rank());
    std::vector<int> out(6, -1);
    const int counts[3] = {1, 2, 3};
    const int displs[3] = {0, 1, 3};
    p.gatherv(mine.data(), p.rank() + 1, Datatype::kInt, out.data(), counts,
              displs, 0, kCommWorld);
    if (p.rank() == 0) {
      EXPECT_EQ(out, (std::vector<int>{0, 1, 1, 2, 2, 2}));
    }
  });
}

TEST(Collectives, ScattervVariableCounts) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    std::vector<int> src{10, 20, 21, 30, 31, 32};
    const int counts[3] = {1, 2, 3};
    const int displs[3] = {0, 1, 3};
    std::vector<int> mine(3, -1);
    p.scatterv(p.rank() == 0 ? src.data() : nullptr,
               p.rank() == 0 ? counts : nullptr,
               p.rank() == 0 ? displs : nullptr, Datatype::kInt, mine.data(), 3,
               0, kCommWorld);
    for (int i = 0; i <= p.rank(); ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], (p.rank() + 1) * 10 + i);
    }
  });
}

TEST(Collectives, ScattervRejectsSmallBuffer) {
  Universe uni(config(2));
  auto result = uni.run([&](Process& p) {
    const int src[2] = {1, 2};
    const int counts[2] = {1, 1};
    const int displs[2] = {0, 1};
    int mine = 0;
    p.scatterv(p.rank() == 0 ? src : nullptr, p.rank() == 0 ? counts : nullptr,
               p.rank() == 0 ? displs : nullptr, Datatype::kInt, &mine,
               /*recvcount=*/0, 0, kCommWorld);
  });
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------------------- parser

TEST(Parser, DoWhileBodyIsAnalyzed) {
  const auto analysis = sast::analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    do {
      MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } while (a < 10);
  }
}
)");
  ASSERT_EQ(analysis.calls.size(), 1u);
  EXPECT_TRUE(analysis.calls[0].in_parallel);
}

TEST(Parser, SwitchCasesAreAnalyzed) {
  const auto analysis = sast::analyze_source(R"(
void f() {
  switch (mode) {
    case 0:
      MPI_Barrier(MPI_COMM_WORLD);
      break;
    default:
      MPI_Bcast(&a, 1, MPI_INT, 0, MPI_COMM_WORLD);
      break;
  }
}
)");
  EXPECT_EQ(analysis.calls.size(), 2u);
  EXPECT_FALSE(analysis.calls[0].in_parallel);
}

TEST(ParserFuzz, GarbageNeverCrashes) {
  util::Rng rng(0xF00D);
  const char charset[] =
      "abcdefg MPI_Send(){};#pragma omp parallel for<>&|*/+-\"'0123456789\n\t";
  for (int trial = 0; trial < 50; ++trial) {
    std::string source;
    const int len = 20 + static_cast<int>(rng.next_below(400));
    for (int i = 0; i < len; ++i) {
      source.push_back(charset[rng.next_below(sizeof(charset) - 1)]);
    }
    // Must not crash or hang — errors are fine.
    const auto analysis = sast::analyze_source(source);
    (void)analysis;
  }
}

// -------------------------------------------------------------------- logging

TEST(Log, LevelGatesOutput) {
  using util::LogLevel;
  const LogLevel old = util::log_level();
  util::set_log_level(LogLevel::kError);
  EXPECT_EQ(util::log_level(), LogLevel::kError);
  // Below-threshold logging must be a cheap no-op (no crash, no output check
  // needed — the call itself is the contract).
  HOME_INFO() << "suppressed " << 42;
  util::set_log_level(old);
}

// --------------------------------------------- instrumentation is transparent

TEST(SemanticPreservation, ResidualIdenticalUnderEveryTool) {
  // The same app config must compute the *same* residual under Base, HOME,
  // Marmot and ITC — checkers observe, they must not perturb.
  apps::AppConfig cfg = apps::clean_config(apps::AppKind::kLU, 2);
  cfg.iterations = 3;

  auto run_and_get_residual = [&](apps::Tool tool) {
    std::atomic<double> residual{0.0};
    simmpi::UniverseConfig ucfg;
    ucfg.nranks = cfg.nranks;

    Session home_session;
    baselines::MarmotSession marmot_session;
    baselines::ItcSession itc_session;
    if (tool == apps::Tool::kHome) home_session.configure(ucfg);
    if (tool == apps::Tool::kMarmot) marmot_session.configure(ucfg);
    if (tool == apps::Tool::kItc) itc_session.configure(ucfg);

    Universe uni(ucfg);
    if (tool == apps::Tool::kHome) home_session.attach(uni);
    if (tool == apps::Tool::kMarmot) marmot_session.attach(uni);
    if (tool == apps::Tool::kItc) itc_session.attach(uni);

    homp::set_default_threads(cfg.nthreads);
    auto run = uni.run([&](Process& p) {
      residual.store(apps::run_app_rank(cfg, p));
    });
    EXPECT_TRUE(run.ok());

    if (tool == apps::Tool::kHome) home_session.detach(uni);
    if (tool == apps::Tool::kMarmot) marmot_session.detach(uni);
    if (tool == apps::Tool::kItc) itc_session.detach(uni);
    return residual.load();
  };

  const double expected = run_and_get_residual(apps::Tool::kBase);
  EXPECT_GT(expected, 0.0);
  EXPECT_DOUBLE_EQ(run_and_get_residual(apps::Tool::kHome), expected);
  EXPECT_DOUBLE_EQ(run_and_get_residual(apps::Tool::kMarmot), expected);
  EXPECT_DOUBLE_EQ(run_and_get_residual(apps::Tool::kItc), expected);
}

TEST(SemanticPreservation, ResidualIdenticalAcrossRepeatedRuns) {
  apps::AppConfig cfg = apps::clean_config(apps::AppKind::kSP, 2);
  cfg.iterations = 2;
  double first = NAN;
  for (int i = 0; i < 3; ++i) {
    std::atomic<double> residual{0.0};
    simmpi::UniverseConfig ucfg;
    ucfg.nranks = cfg.nranks;
    Universe uni(ucfg);
    homp::set_default_threads(cfg.nthreads);
    uni.run([&](Process& p) { residual.store(apps::run_app_rank(cfg, p)); });
    if (std::isnan(first)) {
      first = residual.load();
    } else {
      EXPECT_DOUBLE_EQ(residual.load(), first);
    }
  }
}

}  // namespace
}  // namespace home
