// App-level equivalence of the online streaming engine (acceptance
// criterion): the same injected-violation program checked in
// AnalysisMode::kOnline must report exactly the post-mortem violation set —
// at any queue size, with retirement enabled, verified both by the built-in
// end-of-run reconciliation and by an independent post-mortem run.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "src/apps/app.hpp"
#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/worksharing.hpp"
#include "src/spec/violations.hpp"

namespace home {
namespace {

using apps::AppConfig;
using apps::AppKind;
using simmpi::Datatype;
using simmpi::kCommWorld;
using simmpi::Process;
using simmpi::ThreadLevel;
using spec::ViolationType;

std::set<std::string> key_set(const Report& report) {
  std::set<std::string> keys;
  for (const spec::Violation& v : report.violations()) {
    keys.insert(spec::violation_key(v));
  }
  return keys;
}

CheckConfig app_check(const AppConfig& app) {
  CheckConfig cfg;
  cfg.nranks = app.nranks;
  cfg.nthreads = app.nthreads;
  cfg.block_timeout_ms = app.block_timeout_ms;
  return cfg;
}

/// Run the app post-mortem and online (with the given knobs) and require
/// identical violation-key sets plus a clean built-in reconciliation.
void expect_equivalent(const AppConfig& app, std::size_t queue_capacity,
                       std::size_t retire_interval) {
  auto rank_main = [&app](Process& p) { apps::run_app_rank(app, p); };

  CheckConfig post = app_check(app);
  const CheckResult baseline = check_program(post, rank_main);
  ASSERT_TRUE(baseline.run.ok());

  CheckConfig online = app_check(app);
  online.session.mode = AnalysisMode::kOnline;
  online.session.online.queue_capacity = queue_capacity;
  online.session.online.retire_interval = retire_interval;
  const CheckResult streamed = check_program(online, rank_main);
  ASSERT_TRUE(streamed.run.ok());

  // The built-in cross-check over the retained trace of the *same* run.
  EXPECT_TRUE(streamed.reconciliation.ran);
  EXPECT_TRUE(streamed.reconciliation.equivalent)
      << "online-only: " << streamed.reconciliation.online_only.size()
      << ", post-mortem-only: "
      << streamed.reconciliation.post_mortem_only.size();

  // And against an independent post-mortem execution: the scheduler may
  // interleave differently, but every injected class must still be found.
  EXPECT_EQ(key_set(streamed.report), key_set(baseline.report));
  EXPECT_EQ(streamed.online_stats.events_dropped, 0u);
  EXPECT_GT(streamed.online_stats.events_processed, 0u);
}

class OnlineAppEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(OnlineAppEquivalence, LuMzAllSixViolationClasses) {
  const auto [queue, retire] = GetParam();
  expect_equivalent(apps::paper_config(AppKind::kLU, 2), queue, retire);
}

INSTANTIATE_TEST_SUITE_P(
    QueueAndRetire, OnlineAppEquivalence,
    ::testing::Values(std::make_tuple(std::size_t{8}, std::size_t{64}),
                      std::make_tuple(std::size_t{8}, std::size_t{1024}),
                      std::make_tuple(std::size_t{1024}, std::size_t{64}),
                      std::make_tuple(std::size_t{1024}, std::size_t{1024})));

TEST(OnlineAppEquivalenceSuite, BtMzDefaultKnobs) {
  expect_equivalent(apps::paper_config(AppKind::kBT, 2), 4096, 1024);
}

TEST(OnlineAppEquivalenceSuite, SpMzTinyQueueSmallEpochs) {
  expect_equivalent(apps::paper_config(AppKind::kSP, 2), 8, 64);
}

TEST(OnlineAppEquivalenceSuite, CleanRunStaysClean) {
  const AppConfig app = apps::clean_config(AppKind::kLU, 2);
  CheckConfig cfg = app_check(app);
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.retire_interval = 64;
  const CheckResult result =
      check_program(cfg, [&app](Process& p) { apps::run_app_rank(app, p); });
  ASSERT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.violations().empty());
  EXPECT_TRUE(result.reconciliation.ran);
  EXPECT_TRUE(result.reconciliation.equivalent);
}

TEST(OnlineLiveReports, CallbackFiresWhileTheProgramRuns) {
  const AppConfig app = apps::paper_config(AppKind::kLU, 2);
  std::atomic<std::size_t> live{0};
  CheckConfig cfg = app_check(app);
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.on_violation =
      [&live](const spec::Violation&) { live.fetch_add(1); };
  const CheckResult result =
      check_program(cfg, [&app](Process& p) { apps::run_app_rank(app, p); });
  ASSERT_TRUE(result.run.ok());
  EXPECT_GT(live.load(), 0u);
  EXPECT_LE(live.load(), result.report.violations().size());
  EXPECT_EQ(result.online_stats.live_reports, live.load());
}

TEST(OnlineStreamingOnly, UnretainedTraceStillReportsViolations) {
  // retain_trace=false is the truly bounded-memory deployment: the log
  // buffers nothing, so reconciliation cannot run — but the streamed
  // verdicts are the full report.
  const AppConfig app = apps::paper_config(AppKind::kLU, 2);
  CheckConfig cfg = app_check(app);
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.retain_trace = false;
  const CheckResult result =
      check_program(cfg, [&app](Process& p) { apps::run_app_rank(app, p); });
  ASSERT_TRUE(result.run.ok());
  EXPECT_FALSE(result.reconciliation.ran);
  for (const ViolationType type :
       {ViolationType::kInitialization, ViolationType::kFinalization,
        ViolationType::kConcurrentRecv, ViolationType::kConcurrentRequest,
        ViolationType::kProbe, ViolationType::kCollectiveCall}) {
    EXPECT_TRUE(result.report.has(type))
        << spec::violation_type_name(type);
  }
}

TEST(OnlineCaseStudy, Figure1InitializationViolationStreamsLive) {
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.block_timeout_ms = 2000;
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.queue_capacity = 8;
  cfg.session.online.retire_interval = 16;
  auto result = check_program(cfg, [](Process& p) {
    p.init();
    homp::parallel(2, [&] {
      homp::sections({
          [&] {
            if (p.rank() == 0) {
              const int v = 1;
              p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld, {"cs1.send"});
            }
          },
          [&] {
            if (p.rank() == 1) {
              int v = 0;
              p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld, nullptr,
                     {"cs1.recv"});
            }
          },
      });
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kInitialization));
  EXPECT_TRUE(result.reconciliation.ran);
  EXPECT_TRUE(result.reconciliation.equivalent);
}

}  // namespace
}  // namespace home
