// Round-trip tests of trace serialization, the offline analysis entry point,
// and the instrumentation-plan file handoff.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/sast/analysis.hpp"
#include "src/trace/trace_io.hpp"

namespace home {
namespace {

using namespace simmpi;

trace::Event make_event(trace::Tid tid, trace::EventKind kind, trace::ObjId obj) {
  trace::Event e;
  e.tid = tid;
  e.kind = kind;
  e.obj = obj;
  return e;
}

TEST(TraceIo, RoundTripsPlainEvents) {
  trace::TraceLog log;
  log.emit(make_event(1, trace::EventKind::kMemWrite, 42));
  auto locked = make_event(2, trace::EventKind::kLockAcquire, 7);
  locked.locks_held = {7, 9};
  log.emit(std::move(locked));

  std::stringstream buffer;
  trace::write_trace(buffer, log);
  const trace::LoadedTrace loaded = trace::read_trace(buffer);

  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[0].kind, trace::EventKind::kMemWrite);
  EXPECT_EQ(loaded.events[0].obj, 42u);
  EXPECT_EQ(loaded.events[1].locks_held, (std::vector<trace::ObjId>{7, 9}));
  EXPECT_LT(loaded.events[0].seq, loaded.events[1].seq);
}

TEST(TraceIo, RoundTripsMpiCallInfoAndStrings) {
  trace::TraceLog log;
  trace::Event call = make_event(3, trace::EventKind::kMpiCall, 0);
  call.rank = 1;
  trace::MpiCallInfo info;
  info.type = trace::MpiCallType::kRecv;
  info.peer = 0;
  info.tag = 5;
  info.comm = 1;
  info.on_main_thread = true;
  info.provided = 3;
  info.callsite = log.strings().intern("main:10:MPI_Recv with space");
  call.mpi = info;
  log.emit(std::move(call));

  std::stringstream buffer;
  trace::write_trace(buffer, log);
  const trace::LoadedTrace loaded = trace::read_trace(buffer);

  ASSERT_EQ(loaded.events.size(), 1u);
  const auto& e = loaded.events[0];
  ASSERT_TRUE(e.mpi.has_value());
  EXPECT_EQ(e.mpi->type, trace::MpiCallType::kRecv);
  EXPECT_EQ(e.mpi->tag, 5);
  EXPECT_TRUE(e.mpi->on_main_thread);
  EXPECT_EQ(e.mpi->provided, 3);
  EXPECT_EQ(loaded.label(e.mpi->callsite), "main:10:MPI_Recv with space");
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream buffer("not a trace\n");
  EXPECT_THROW(trace::read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, OfflineAnalysisMatchesLive) {
  CheckConfig cfg;
  cfg.nranks = 2;
  Session session(cfg.session);
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  homp::set_default_threads(2);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = 0;
      const int peer = 1 - p.rank();
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"io.send"});
      } else {
        p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr,
               {"io.recv"});
      }
    });
    p.finalize();
  });
  session.detach(universe);

  const Report live = session.analyze();
  ASSERT_TRUE(live.has(spec::ViolationType::kConcurrentRecv));

  std::stringstream buffer;
  trace::write_trace(buffer, session.log());
  const Report offline = analyze_trace(trace::read_trace(buffer));
  EXPECT_EQ(offline.violations().size(), live.violations().size());
  EXPECT_TRUE(offline.has(spec::ViolationType::kConcurrentRecv));
  // Callsites resolved identically.
  bool found_site = false;
  for (const auto& v : offline.violations()) {
    if (v.callsite1 == "io.recv" || v.callsite2 == "io.recv") found_site = true;
  }
  EXPECT_TRUE(found_site);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/home_trace_test.txt";
  trace::TraceLog log;
  log.emit(make_event(0, trace::EventKind::kBarrier, 5));
  trace::save_trace_file(path, log);
  const auto loaded = trace::load_trace_file(path);
  EXPECT_EQ(loaded.events.size(), 1u);
  std::remove(path.c_str());
}

TEST(PlanIo, RoundTripsLabels) {
  sast::InstrPlan plan;
  plan.instrument = {"main:10:MPI_Recv", "halo:4:MPI_Send"};
  plan.total_calls = 5;
  plan.instrumented_calls = 2;
  plan.filtered_calls = 3;

  const std::string path = testing::TempDir() + "/home_plan_test.txt";
  sast::save_plan_file(path, plan);
  const sast::InstrPlan loaded = sast::load_plan_file(path);
  EXPECT_EQ(loaded.instrument, plan.instrument);
  std::remove(path.c_str());
}

TEST(PlanIo, RoundTripsPruneReasons) {
  sast::InstrPlan plan;
  plan.instrument = {"main:10:MPI_Recv"};
  plan.pruned = {{"main:12:MPI_Send", "critical-guarded(net)"},
                 {"halo:4:MPI_Wait", "barrier-separated"}};
  plan.total_calls = 4;
  plan.instrumented_calls = 1;
  plan.filtered_calls = 1;
  plan.pruned_calls = 2;

  const std::string path = testing::TempDir() + "/home_plan_v2_test.txt";
  sast::save_plan_file(path, plan);
  const sast::InstrPlan loaded = sast::load_plan_file(path);
  EXPECT_EQ(loaded.instrument, plan.instrument);
  EXPECT_EQ(loaded.pruned, plan.pruned);
  EXPECT_EQ(loaded.total_calls, 4u);
  EXPECT_EQ(loaded.instrumented_calls, 1u);
  EXPECT_EQ(loaded.filtered_calls, 1u);
  EXPECT_EQ(loaded.pruned_calls, 2u);
  std::remove(path.c_str());
}

TEST(PlanIo, LoadsLegacyV1Format) {
  const std::string path = testing::TempDir() + "/home_plan_v1_test.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("#home-plan v1\nmain:10:MPI_Recv\nhalo:4:MPI_Send\n", f);
    std::fclose(f);
  }
  const sast::InstrPlan loaded = sast::load_plan_file(path);
  EXPECT_EQ(loaded.instrument,
            (std::set<std::string>{"main:10:MPI_Recv", "halo:4:MPI_Send"}));
  EXPECT_TRUE(loaded.pruned.empty());
  EXPECT_EQ(loaded.total_calls, 2u);
  std::remove(path.c_str());
}

TEST(PlanIo, LoadRejectsGarbageBodyLine) {
  const std::string path = testing::TempDir() + "/home_plan_badline_test.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("#home-plan v2 total=1 instrumented=1 filtered=0 pruned=0\n"
               "frobnicate main:10:MPI_Recv\n",
               f);
    std::fclose(f);
  }
  EXPECT_THROW(sast::load_plan_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PlanIo, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/home_plan_bad.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("garbage\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(sast::load_plan_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PlanIo, StaticPlanDrivesDynamicFilter) {
  // Static phase on a source whose labels match the runtime callsites...
  const auto analysis = sast::analyze_source(R"(
void work() {
  #pragma omp parallel
  {
    MPI_Recv(&a, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, st);
  }
  MPI_Barrier(MPI_COMM_WORLD);
}
)");
  ASSERT_EQ(analysis.plan.instrument.size(), 1u);

  // ...feeds the dynamic phase's plan filter.
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.session.filter = InstrumentFilter::kPlan;
  cfg.session.plan = analysis.plan.instrument;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = 0;
      if (p.rank() == 0) {
        // Unplanned callsite: not instrumented.
        p.send(&a, 1, Datatype::kInt, 1, 0, kCommWorld, {"work:99:MPI_Send"});
      } else {
        p.recv(&a, 1, Datatype::kInt, 0, 0, kCommWorld, nullptr,
               {"work:5:MPI_Recv"});
      }
    });
    p.barrier(kCommWorld, {"work:8:MPI_Barrier"});  // serial: filtered.
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  // Both of rank 1's threads hit the planned recv site -> V3 detected even
  // though everything else was skipped.
  EXPECT_TRUE(result.report.has(spec::ViolationType::kConcurrentRecv));
  EXPECT_GT(result.report.stats().skipped_calls, 0u);
}

}  // namespace
}  // namespace home
