// Tests for the static communication-matching & deadlock engine
// (src/sast/commstat) and the StaticGuidance artifact it emits — including
// the ISSUE-8 consistency satellite: randomized program specs are analyzed
// statically AND swept dynamically over small universes, and no kDefinite
// static verdict may be dynamically refuted.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/hidden_race.hpp"
#include "src/explore/guidance.hpp"
#include "src/explore/sweeper.hpp"
#include "src/sast/commstat.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace home;
using sast::CommstatOptions;
using sast::CommstatResult;
using sast::Severity;
using sast::StaticWarning;
using sast::WarningClass;

bool has_warning(const CommstatResult& r, WarningClass cls,
                 Severity severity) {
  for (const StaticWarning& w : r.warnings) {
    if (w.cls == cls && w.severity == severity) return true;
  }
  return false;
}

bool has_definite_blocking_finding(const CommstatResult& r) {
  return has_warning(r, WarningClass::kDeadlock, Severity::kDefinite) ||
         has_warning(r, WarningClass::kUnmatchedRecv, Severity::kDefinite) ||
         has_warning(r, WarningClass::kCollectiveOrder, Severity::kDefinite);
}

// ---------------------------------------------------------------------------
// StaticGuidance artifact.

TEST(Guidance, RoundTripThroughTextAndFile) {
  explore::StaticGuidance g;
  g.ambiguous.push_back({"app.pick", 3, 2, 1});
  g.ambiguous.push_back({"app.pick2", 2, 1, 0});
  g.ordered.push_back({"app.send", "app.recv", "unique-match"});
  g.ordered.push_back({"a", "b", ""});
  g.phase_ambiguity.push_back({0, 1});
  g.phase_ambiguity.push_back({1, 2});

  explore::StaticGuidance parsed;
  ASSERT_TRUE(explore::StaticGuidance::parse(g.to_string(), &parsed));
  EXPECT_EQ(parsed.to_string(), g.to_string());
  ASSERT_EQ(parsed.ambiguous.size(), 2u);
  EXPECT_EQ(parsed.ambiguous[0].site, "app.pick");
  EXPECT_EQ(parsed.ambiguous[0].alternatives, 3u);
  EXPECT_EQ(parsed.ambiguous[0].occurrences, 2u);
  EXPECT_EQ(parsed.ambiguous[0].phase, 1);
  ASSERT_EQ(parsed.ordered.size(), 2u);
  EXPECT_EQ(parsed.ordered[0].why, "unique-match");
  EXPECT_TRUE(parsed.is_ordered_pair("app.recv", "app.send"));
  EXPECT_FALSE(parsed.is_ordered_pair("app.recv", "app.pick"));
  ASSERT_EQ(parsed.phase_ambiguity.size(), 2u);
  EXPECT_EQ(parsed.phase_ambiguity[1].second, 2u);

  const std::string path = "commstat_test_roundtrip.guidance";
  ASSERT_TRUE(g.save(path));
  explore::StaticGuidance loaded;
  ASSERT_TRUE(explore::StaticGuidance::load(path, &loaded));
  std::remove(path.c_str());
  EXPECT_EQ(loaded.to_string(), g.to_string());
}

TEST(Guidance, GuidedPickValueIsNonDefaultAndInRange) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(explore::guided_pick_value(seed, "s", 0, 0), 0u);
    EXPECT_EQ(explore::guided_pick_value(seed, "s", 0, 1), 0u);
    for (std::size_t n = 2; n <= 5; ++n) {
      for (std::uint64_t occ = 0; occ < 3; ++occ) {
        const std::size_t v = explore::guided_pick_value(seed, "s", occ, n);
        EXPECT_GE(v, 1u) << "guided picks must leave the default arm";
        EXPECT_LT(v, n);
        // Pure function of its arguments.
        EXPECT_EQ(v, explore::guided_pick_value(seed, "s", occ, n));
      }
    }
    // Two-way sites have a single non-default arm: the pick is the same for
    // every seed, which is what makes fingerprint pruning collapse them.
    EXPECT_EQ(explore::guided_pick_value(seed, "any.site", 7, 2), 1u);
  }
}

TEST(Guidance, FingerprintCollapsesTwoWaySitesOnly) {
  explore::StaticGuidance two_way;
  two_way.ambiguous.push_back({"a.pick", 2, 2, 0});
  two_way.ambiguous.push_back({"b.pick", 2, 1, 0});
  const std::uint64_t fp1 = explore::guided_fingerprint(two_way, 1);
  for (std::uint64_t seed = 2; seed <= 16; ++seed) {
    EXPECT_EQ(explore::guided_fingerprint(two_way, seed), fp1)
        << "all-two-way guidance must collapse every seed to one fingerprint";
  }

  explore::StaticGuidance three_way = two_way;
  three_way.ambiguous.push_back({"c.pick", 3, 2, 1});
  bool differs = false;
  const std::uint64_t first = explore::guided_fingerprint(three_way, 1);
  for (std::uint64_t seed = 2; seed <= 16 && !differs; ++seed) {
    differs = explore::guided_fingerprint(three_way, seed) != first;
  }
  EXPECT_TRUE(differs) << "a 3-way site must spread fingerprints over seeds";
}

// ---------------------------------------------------------------------------
// The commstat engine on hand-written models.

TEST(Commstat, HiddenModelYieldsTheTwoPickSites) {
  const CommstatResult r =
      sast::analyze_comm_source(apps::hidden_race_model_source());
  ASSERT_EQ(r.guidance.ambiguous.size(), 2u);
  EXPECT_EQ(r.guidance.ambiguous[0].site, "hidden.pick");
  EXPECT_EQ(r.guidance.ambiguous[0].alternatives, 2u);
  EXPECT_EQ(r.guidance.ambiguous[1].site, "hidden.pick2");
  EXPECT_EQ(r.guidance.ambiguous[1].alternatives, 2u);
  EXPECT_FALSE(r.guidance.ordered.empty());
  // The model is a complete, deadlock-free communication pattern.
  EXPECT_FALSE(has_definite_blocking_finding(r));
  bool checked_three = false;
  for (int n : r.universes) checked_three |= n == 3;
  EXPECT_TRUE(checked_three) << "guards name rank 2, so N=3 must be checked";
}

TEST(Commstat, HeadToHeadBlockingRecvsAreADefiniteDeadlock) {
  const char* src = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Recv(&a, 1, MPI_INT, 1, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&a, 1, MPI_INT, 1, 3, MPI_COMM_WORLD);
  }
  if (rank == 1) {
    MPI_Recv(&a, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&a, 1, MPI_INT, 0, 3, MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}
)";
  const CommstatResult r = sast::analyze_comm_source(src);
  EXPECT_TRUE(has_warning(r, WarningClass::kDeadlock, Severity::kDefinite))
      << r.to_string();
  // Deadlock warnings carry a witness.
  ASSERT_FALSE(r.witnesses.empty());
  EXPECT_FALSE(r.witnesses[0].description.empty());
}

TEST(Commstat, EagerSendsBeforeRecvsDoNotDeadlock) {
  const char* src = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Send(&a, 1, MPI_INT, 1, 3, MPI_COMM_WORLD);
    MPI_Recv(&a, 1, MPI_INT, 1, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  }
  if (rank == 1) {
    MPI_Send(&a, 1, MPI_INT, 0, 3, MPI_COMM_WORLD);
    MPI_Recv(&a, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  }
  MPI_Finalize();
  return 0;
}
)";
  const CommstatResult r = sast::analyze_comm_source(src);
  EXPECT_TRUE(r.warnings.empty()) << r.to_string();
}

TEST(Commstat, UnmatchedSendIsFlaggedDefinite) {
  const char* src = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Send(&a, 1, MPI_INT, 1, 3, MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}
)";
  const CommstatResult r = sast::analyze_comm_source(src);
  EXPECT_TRUE(has_warning(r, WarningClass::kUnmatchedSend, Severity::kDefinite))
      << r.to_string();
  EXPECT_FALSE(has_warning(r, WarningClass::kDeadlock, Severity::kDefinite));
}

TEST(Commstat, RingShiftPatternMatchesCleanly) {
  const char* src = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  MPI_Send(&a, 1, MPI_INT, (rank + 1) % size, 4, MPI_COMM_WORLD);
  MPI_Recv(&a, 1, MPI_INT, (rank - 1 + size) % size, 4, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
  MPI_Finalize();
  return 0;
}
)";
  const CommstatResult r = sast::analyze_comm_source(src);
  EXPECT_TRUE(r.warnings.empty()) << r.to_string();
}

TEST(Commstat, CollectiveSkewIsADefiniteFinding) {
  const char* src = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Barrier(MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}
)";
  const CommstatResult r = sast::analyze_comm_source(src);
  EXPECT_TRUE(has_definite_blocking_finding(r)) << r.to_string();
}

// ---------------------------------------------------------------------------
// Randomized static/dynamic consistency (the ISSUE-8 test satellite).
//
// A program spec is a per-rank list of sends / (possibly wildcard) receives /
// barriers.  Each spec is rendered to hybrid C for the static engine and
// interpreted over simmpi for the dynamic sweep; the two must agree:
//
//   * a kDefinite blocking verdict (deadlock, never-matched receive,
//     collective skew) holds on EVERY abstract branch, so the uncontrolled
//     dynamic baseline run must also get stuck (surface TimeoutErrors);
//   * a statically clean program (no warnings at all) must never produce a
//     dynamic run error on any explored schedule.

struct SpecOp {
  enum Kind { kSend, kRecv, kRecvAny, kBarrier } kind = kSend;
  int peer = 0;
  int tag = 0;
  std::string label;
};

struct Spec {
  int nranks = 2;
  std::vector<std::vector<SpecOp>> ops;  ///< per rank.
};

Spec random_spec(std::uint64_t seed) {
  util::Rng rng(seed);
  Spec spec;
  spec.nranks = 2 + static_cast<int>(rng.next_below(2));
  spec.ops.resize(static_cast<std::size_t>(spec.nranks));
  int label_id = 0;
  auto label = [&](const char* what, int rank) {
    return "spec.r" + std::to_string(rank) + "." + what + "." +
           std::to_string(label_id++);
  };
  const std::size_t messages = 2 + rng.next_below(4);
  for (std::size_t m = 0; m < messages; ++m) {
    const int src = static_cast<int>(rng.next_below(spec.nranks));
    int dst = static_cast<int>(rng.next_below(spec.nranks));
    if (dst == src) dst = (dst + 1) % spec.nranks;
    const int tag = static_cast<int>(rng.next_below(3));
    const std::uint64_t shape = rng.next_below(8);
    if (shape != 0) {  // 7/8: emit the send.
      spec.ops[static_cast<std::size_t>(src)].push_back(
          {SpecOp::kSend, dst, tag, label("send", src)});
    }
    if (shape != 1) {  // 7/8: emit the receive (1/4 of them wildcard).
      const bool any = rng.next_below(4) == 0;
      spec.ops[static_cast<std::size_t>(dst)].push_back(
          {any ? SpecOp::kRecvAny : SpecOp::kRecv, src, tag,
           label("recv", dst)});
    }
  }
  if (rng.next_below(2) == 0) {
    // A barrier — occasionally skewed (one rank skips it).
    const bool skew = rng.next_below(4) == 0;
    const int skip = static_cast<int>(rng.next_below(spec.nranks));
    for (int r = 0; r < spec.nranks; ++r) {
      if (skew && r == skip) continue;
      spec.ops[static_cast<std::size_t>(r)].push_back(
          {SpecOp::kBarrier, 0, 0, label("barrier", r)});
    }
  }
  return spec;
}

std::string render_c(const Spec& spec) {
  std::string out =
      "#include <mpi.h>\n"
      "int main() {\n"
      "  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);\n"
      "  MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n";
  for (int r = 0; r < spec.nranks; ++r) {
    out += "  if (rank == " + std::to_string(r) + ") {\n";
    for (const SpecOp& op : spec.ops[static_cast<std::size_t>(r)]) {
      out += "    HOME_SITE(\"" + op.label + "\");\n";
      switch (op.kind) {
        case SpecOp::kSend:
          out += "    MPI_Send(&a, 1, MPI_INT, " + std::to_string(op.peer) +
                 ", " + std::to_string(op.tag) + ", MPI_COMM_WORLD);\n";
          break;
        case SpecOp::kRecv:
          out += "    MPI_Recv(&a, 1, MPI_INT, " + std::to_string(op.peer) +
                 ", " + std::to_string(op.tag) +
                 ", MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n";
          break;
        case SpecOp::kRecvAny:
          out += "    MPI_Recv(&a, 1, MPI_INT, MPI_ANY_SOURCE, " +
                 std::to_string(op.tag) +
                 ", MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n";
          break;
        case SpecOp::kBarrier:
          out += "    MPI_Barrier(MPI_COMM_WORLD);\n";
          break;
      }
    }
    out += "  }\n";
  }
  out += "  MPI_Finalize();\n  return 0;\n}\n";
  return out;
}

explore::SweepResult sweep_spec(const Spec& spec, int schedules) {
  explore::SweepConfig cfg;
  cfg.nranks = spec.nranks;
  cfg.nthreads = 1;
  cfg.schedules = schedules;
  cfg.strategy = explore::StrategyKind::kWildcardReorder;
  cfg.block_timeout_ms = 250;  // deadlocks surface as TimeoutErrors fast.
  const Spec* sp = &spec;
  return explore::Sweeper(cfg).run([sp](simmpi::Process& p) {
    p.init_thread(simmpi::ThreadLevel::kMultiple, {"spec.init"});
    int a = 0;
    for (const SpecOp& op : sp->ops[static_cast<std::size_t>(p.rank())]) {
      switch (op.kind) {
        case SpecOp::kSend:
          p.send(&a, 1, simmpi::Datatype::kInt, op.peer, op.tag,
                 simmpi::kCommWorld, {op.label.c_str()});
          break;
        case SpecOp::kRecv:
          p.recv(&a, 1, simmpi::Datatype::kInt, op.peer, op.tag,
                 simmpi::kCommWorld, nullptr, {op.label.c_str()});
          break;
        case SpecOp::kRecvAny:
          p.recv(&a, 1, simmpi::Datatype::kInt, simmpi::kAnySource, op.tag,
                 simmpi::kCommWorld, nullptr, {op.label.c_str()});
          break;
        case SpecOp::kBarrier:
          p.barrier(simmpi::kCommWorld, {op.label.c_str()});
          break;
      }
    }
    p.finalize({"spec.fin"});
  });
}

bool baseline_errored(const explore::SweepResult& result) {
  for (const std::string& err : result.run_errors) {
    if (err.rfind("schedule -1:", 0) == 0) return true;
  }
  return false;
}

TEST(Commstat, RandomSpecsStaticVerdictsAreNeverDynamicallyRefuted) {
  int definite_blocking = 0;
  int statically_clean = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Spec spec = random_spec(seed);
    CommstatOptions opt;
    opt.universes = {spec.nranks};
    const CommstatResult st = sast::analyze_comm_source(render_c(spec), opt);

    const bool expect_stuck = has_definite_blocking_finding(st);
    const bool expect_clean = st.warnings.empty();
    if (!expect_stuck && !expect_clean) continue;  // kPossible-only: no claim.

    const explore::SweepResult dyn = sweep_spec(spec, /*schedules=*/3);
    if (expect_stuck) {
      ++definite_blocking;
      EXPECT_TRUE(baseline_errored(dyn))
          << "seed " << seed << ": static kDefinite blocking verdict refuted "
          << "by a clean dynamic baseline\n"
          << render_c(spec) << st.to_string();
    } else {
      ++statically_clean;
      EXPECT_TRUE(dyn.run_errors.empty())
          << "seed " << seed << ": statically clean spec errored dynamically\n"
          << render_c(spec) << dyn.run_errors[0];
    }
  }
  // The generator must actually exercise both sides of the contract.
  EXPECT_GE(definite_blocking, 3) << "generator produced too few deadlocks";
  EXPECT_GE(statically_clean, 3) << "generator produced too few clean specs";
}

}  // namespace
