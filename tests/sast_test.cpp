#include <gtest/gtest.h>

#include "src/sast/analysis.hpp"
#include "src/sast/cfg.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/sast/lexer.hpp"
#include "src/sast/parser.hpp"
#include "src/sast/rewriter.hpp"
#include "src/sast/static_lockset.hpp"
#include "src/util/strings.hpp"

namespace home::sast {
namespace {

// The paper's Figure 1 case study, verbatim shape.
constexpr const char* kCaseStudy1 = R"(
#include <mpi.h>
int main() {
  MPI_Init();
  omp_set_num_threads(2);
  #pragma omp parallel
  {
    #pragma omp sections
    {
      #pragma omp section
      if (rank == 0)
        MPI_Send(rank1);
      #pragma omp section
      if (rank == 0)
        MPI_Recv(rank1);
    }
  }
  return 0;
}
)";

// The paper's Figure 2 case study.
constexpr const char* kCaseStudy2 = R"(
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  int tag = 0;
  omp_set_num_threads(2);
  #pragma omp parallel for private(i)
  for (j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD);
    }
  }
}
)";

// ----------------------------------------------------------------------- lexer

TEST(Lexer, TokenizesIdentifiersNumbersPunct) {
  auto result = lex("int x = 42 + y;");
  ASSERT_GE(result.tokens.size(), 8u);
  EXPECT_TRUE(result.tokens[0].is_ident("int"));
  EXPECT_TRUE(result.tokens[2].is_punct("="));
  EXPECT_EQ(result.tokens[3].kind, TokenKind::kNumber);
  EXPECT_TRUE(result.errors.empty());
}

TEST(Lexer, PragmaBecomesSingleToken) {
  auto result = lex("#pragma omp parallel for num_threads(2)\nx = 1;");
  ASSERT_FALSE(result.tokens.empty());
  EXPECT_EQ(result.tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(result.tokens[0].text, "omp parallel for num_threads(2)");
}

TEST(Lexer, IncludesCollectedNotTokenized) {
  auto result = lex("#include <mpi.h>\nint x;");
  ASSERT_EQ(result.includes.size(), 1u);
  EXPECT_EQ(result.includes[0], "#include <mpi.h>");
  EXPECT_TRUE(result.tokens[0].is_ident("int"));
}

TEST(Lexer, CommentsSkipped) {
  auto result = lex("a; // line comment\n/* block\ncomment */ b;");
  ASSERT_GE(result.tokens.size(), 4u);
  EXPECT_TRUE(result.tokens[0].is_ident("a"));
  EXPECT_TRUE(result.tokens[2].is_ident("b"));
}

TEST(Lexer, StringAndCharLiterals) {
  auto result = lex(R"(x = "he//llo"; c = 'y';)");
  bool found_string = false;
  for (const auto& t : result.tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "\"he//llo\"");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(Lexer, TracksLineNumbers) {
  auto result = lex("a;\nb;\n\nc;");
  EXPECT_EQ(result.tokens[0].line, 1);
  EXPECT_EQ(result.tokens[2].line, 2);
  EXPECT_EQ(result.tokens[4].line, 4);
}

TEST(Lexer, MultiCharPunct) {
  auto result = lex("a && b -> c");
  EXPECT_TRUE(result.tokens[1].is_punct("&&"));
  EXPECT_TRUE(result.tokens[3].is_punct("->"));
}

// ---------------------------------------------------------------------- parser

TEST(Parser, CaseStudy1Structure) {
  TranslationUnit unit = parse(kCaseStudy1);
  EXPECT_TRUE(unit.errors.empty()) << util::join(unit.errors, "; ");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "main");
  ASSERT_TRUE(unit.functions[0].body != nullptr);
}

TEST(Parser, ExtractsMpiCallsWithArgs) {
  TranslationUnit unit = parse(kCaseStudy2);
  ASSERT_EQ(unit.functions.size(), 1u);
  int sends = 0, recvs = 0;
  visit_stmts(*unit.functions[0].body, [&](const Stmt& s) {
    for (const CallExpr& c : s.calls) {
      if (c.callee == "MPI_Send") {
        ++sends;
        ASSERT_EQ(c.args.size(), 6u);
        EXPECT_EQ(c.args[4], "tag");
      }
      if (c.callee == "MPI_Recv") ++recvs;
    }
  });
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
}

TEST(Parser, OmpDirectivesRecognized) {
  TranslationUnit unit = parse(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp critical(update)
    { x = 1; }
    #pragma omp barrier
    #pragma omp single
    { y = 2; }
  }
}
)");
  int parallel = 0, critical = 0, barrier = 0, single = 0;
  std::string critical_name;
  visit_stmts(*unit.functions[0].body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kOmp) return;
    switch (s.directive) {
      case OmpDirective::kParallel: ++parallel; break;
      case OmpDirective::kCritical:
        ++critical;
        critical_name = s.critical_name;
        break;
      case OmpDirective::kBarrier: ++barrier; break;
      case OmpDirective::kSingle: ++single; break;
      default: break;
    }
  });
  EXPECT_EQ(parallel, 1);
  EXPECT_EQ(critical, 1);
  EXPECT_EQ(critical_name, "update");
  EXPECT_EQ(barrier, 1);
  EXPECT_EQ(single, 1);
}

TEST(Parser, ClausesParsed) {
  TranslationUnit unit = parse(R"(
void f() {
  #pragma omp parallel for private(i, j) num_threads(4)
  for (i = 0; i < n; i++) { work(i); }
}
)");
  bool found = false;
  visit_stmts(*unit.functions[0].body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kOmp && s.directive == OmpDirective::kParallelFor) {
      found = true;
      EXPECT_EQ(s.clauses.at("num_threads"), "4");
      EXPECT_NE(s.clauses.at("private").find("i"), std::string::npos);
    }
  });
  EXPECT_TRUE(found);
}

TEST(Parser, GlobalSetupCallRecorded) {
  TranslationUnit unit = parse(R"(
#include <mympi.h>
MPI_MonitorVariableSetup(srctmp, tagtmp);
int main() { return 0; }
)");
  ASSERT_EQ(unit.globals.size(), 1u);
  ASSERT_FALSE(unit.globals[0]->calls.empty());
  EXPECT_EQ(unit.globals[0]->calls[0].callee, "MPI_MonitorVariableSetup");
}

TEST(Parser, IfElseChains) {
  TranslationUnit unit = parse(R"(
void f() {
  if (a) { x(); } else if (b) { y(); } else { z(); }
}
)");
  EXPECT_TRUE(unit.errors.empty()) << util::join(unit.errors, "; ");
  const Stmt& block = *unit.functions[0].body;
  ASSERT_EQ(block.children.size(), 1u);
  const Stmt& if_stmt = *block.children[0];
  EXPECT_EQ(if_stmt.kind, StmtKind::kIf);
  ASSERT_TRUE(if_stmt.else_body != nullptr);
  EXPECT_EQ(if_stmt.else_body->kind, StmtKind::kIf);
}

TEST(Parser, RecoversFromErrors) {
  TranslationUnit unit = parse(R"(
void f() {
  @@@ garbage here
  MPI_Barrier(MPI_COMM_WORLD);
}
)");
  // The MPI call after the garbage is still visible.
  bool found = false;
  visit_stmts(*unit.functions[0].body, [&](const Stmt& s) {
    for (const auto& c : s.calls) {
      if (c.callee == "MPI_Barrier") found = true;
    }
  });
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------------------- CFG

TEST(Cfg, HasEntryAndExit) {
  TranslationUnit unit = parse("void f() { a(); b(); }");
  Cfg cfg = build_cfg(unit.functions[0]);
  EXPECT_GE(cfg.nodes().size(), 4u);
  EXPECT_EQ(cfg.node(cfg.entry()).kind, CfgNodeKind::kEntry);
  EXPECT_EQ(cfg.node(cfg.exit()).kind, CfgNodeKind::kExit);
}

TEST(Cfg, ParallelRegionGetsBeginEndMarkers) {
  TranslationUnit unit = parse(R"(
void f() {
  #pragma omp parallel
  { MPI_Barrier(MPI_COMM_WORLD); }
}
)");
  Cfg cfg = build_cfg(unit.functions[0]);
  int begins = 0, ends = 0;
  for (const CfgNode& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::kOmpParallelBegin) ++begins;
    if (n.kind == CfgNodeKind::kOmpParallelEnd) ++ends;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST(Cfg, LoopHasBackEdge) {
  TranslationUnit unit = parse("void f() { while (x) { a(); } b(); }");
  Cfg cfg = build_cfg(unit.functions[0]);
  // Find the condition node and check one successor reaches back.
  bool has_back_edge = false;
  for (const CfgNode& n : cfg.nodes()) {
    for (int succ : n.succs) {
      if (succ < n.id) has_back_edge = true;
    }
  }
  EXPECT_TRUE(has_back_edge);
}

TEST(Cfg, DotOutputRenders) {
  TranslationUnit unit = parse("void f() { if (x) a(); }");
  Cfg cfg = build_cfg(unit.functions[0]);
  const std::string dot = cfg.to_dot("f");
  EXPECT_NE(dot.find("digraph f"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// -------------------------------------------------------------------- analysis

TEST(Analysis, CaseStudy1PlanSelectsParallelCalls) {
  AnalysisResult result = analyze_source(kCaseStudy1);
  EXPECT_TRUE(result.uses_plain_init);
  EXPECT_FALSE(result.uses_init_thread);
  // MPI_Init is serial; MPI_Send/MPI_Recv are inside the parallel region.
  EXPECT_EQ(result.plan.total_calls, 3u);
  EXPECT_EQ(result.plan.instrumented_calls, 2u);
  EXPECT_EQ(result.plan.filtered_calls, 1u);
}

TEST(Analysis, CaseStudy2DetectsRequestedLevel) {
  AnalysisResult result = analyze_source(kCaseStudy2);
  EXPECT_TRUE(result.uses_init_thread);
  EXPECT_EQ(result.requested_level, "MPI_THREAD_MULTIPLE");
  // 4 calls inside parallel for; Init_thread and Comm_rank serial.
  EXPECT_EQ(result.plan.instrumented_calls, 4u);
}

TEST(Analysis, CriticalStackTracked) {
  AnalysisResult result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp critical(mpi)
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
    MPI_Recv(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, st);
  }
}
)");
  ASSERT_EQ(result.calls.size(), 2u);
  const auto& send = result.calls[0];
  const auto& recv = result.calls[1];
  EXPECT_EQ(send.routine, "MPI_Send");
  ASSERT_EQ(send.critical_stack.size(), 1u);
  EXPECT_EQ(send.critical_stack[0], "mpi");
  EXPECT_TRUE(recv.critical_stack.empty());
}

TEST(Analysis, UnnamedCriticalsShareOneGlobalLock) {
  // Per the OpenMP spec every unnamed `omp critical` maps to one global
  // lock: two lexically distinct unnamed regions mutually exclude, so the
  // guarded calls are serialized (and prunable under MPI_THREAD_MULTIPLE).
  AnalysisResult result = analyze_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
    #pragma omp critical
    { MPI_Recv(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, st); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = nullptr;
  const MpiCallSite* recv = nullptr;
  for (const auto& site : result.calls) {
    if (site.routine == "MPI_Send") send = &site;
    if (site.routine == "MPI_Recv") recv = &site;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  ASSERT_EQ(send->critical_stack.size(), 1u);
  EXPECT_EQ(send->critical_stack[0], kUnnamedCriticalLock);
  EXPECT_EQ(send->locks, recv->locks);
  EXPECT_EQ(send->locks.count(kUnnamedCriticalLock), 1u);
  EXPECT_TRUE(send->pruned);
  EXPECT_TRUE(recv->pruned);
  EXPECT_EQ(result.plan.instrumented_calls, 0u);
}

TEST(Analysis, InterproceduralParallelCallees) {
  AnalysisResult result = analyze_source(R"(
void halo() { MPI_Recv(&a, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, st); }
void main2() {
  #pragma omp parallel
  { halo(); }
  halo();
}
)");
  // halo is called from a parallel region, so its MPI_Recv must be planned.
  ASSERT_EQ(result.calls.size(), 1u);
  EXPECT_TRUE(result.calls[0].in_parallel);
  EXPECT_EQ(result.plan.instrumented_calls, 1u);
}

TEST(Analysis, SerialOnlyProgramHasEmptyPlan) {
  AnalysisResult result = analyze_source(R"(
int main() {
  MPI_Init();
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_EQ(result.plan.instrumented_calls, 0u);
  EXPECT_EQ(result.plan.filtered_calls, 3u);
}

TEST(Analysis, MasterSingleMarked) {
  AnalysisResult result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp master
    { MPI_Allreduce(&x, &y, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD); }
  }
}
)");
  ASSERT_EQ(result.calls.size(), 1u);
  EXPECT_TRUE(result.calls[0].in_master_or_single);
}

// -------------------------------------------------------------------- rewriter

TEST(Rewriter, ReplacesOnlyPlannedCalls) {
  AnalysisResult analysis = analyze_source(kCaseStudy1);
  RewriteResult out = rewrite(kCaseStudy1, analysis);
  EXPECT_EQ(out.replaced, 2u);
  EXPECT_NE(out.source.find("HMPI_Send"), std::string::npos);
  EXPECT_NE(out.source.find("HMPI_Recv"), std::string::npos);
  // The serial MPI_Init stays unwrapped.
  EXPECT_NE(out.source.find("MPI_Init()"), std::string::npos);
  EXPECT_EQ(out.source.find("HMPI_Init"), std::string::npos);
}

TEST(Rewriter, SwapsHeaderAndInsertsSetup) {
  AnalysisResult analysis = analyze_source(kCaseStudy1);
  RewriteResult out = rewrite(kCaseStudy1, analysis);
  EXPECT_TRUE(out.header_swapped);
  EXPECT_TRUE(out.setup_inserted);
  EXPECT_NE(out.source.find("#include <mympi.h>"), std::string::npos);
  EXPECT_NE(out.source.find("MPI_MonitorVariableSetup"), std::string::npos);
}

TEST(Rewriter, IdempotentOnAlreadyWrappedCalls) {
  const std::string once = rewrite(kCaseStudy1, analyze_source(kCaseStudy1)).source;
  RewriteResult twice = rewrite(once, analyze_source(once));
  EXPECT_EQ(twice.replaced, 0u);  // HMPI_ sites are not MPI_ sites.
}

// ----------------------------------------------------------------- diagnostics

TEST(Diagnostics, CaseStudy1WarnsInitialization) {
  auto warnings = diagnose_source(kCaseStudy1);
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kInitialization) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnostics, CaseStudy2WarnsConcurrentRecv) {
  auto warnings = diagnose_source(kCaseStudy2);
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kConcurrentRecv) found = true;
  }
  EXPECT_TRUE(found) << "case study 2 receives share tag/comm across threads";
}

TEST(Diagnostics, CriticalGuardSuppressesPairWarning) {
  auto warnings = diagnose_source(R"(
void f() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &p);
  #pragma omp parallel
  {
    #pragma omp critical(mpi)
    { MPI_Recv(&a, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, st); }
  }
}
)");
  for (const auto& w : warnings) {
    EXPECT_NE(w.cls, WarningClass::kConcurrentRecv) << w.to_string();
  }
}

TEST(Diagnostics, FinalizeInParallelWarns) {
  auto warnings = diagnose_source(R"(
void f() {
  #pragma omp parallel
  { MPI_Finalize(); }
}
)");
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kFinalization) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnostics, WaitOnSharedRequestWarns) {
  auto warnings = diagnose_source(R"(
void f() {
  #pragma omp parallel
  { MPI_Wait(&req, st); }
}
)");
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kConcurrentRequest) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnostics, CollectiveOnSharedCommWarns) {
  auto warnings = diagnose_source(R"(
void f() {
  #pragma omp parallel
  { MPI_Barrier(MPI_COMM_WORLD); }
}
)");
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kCollectiveCall) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnostics, FunneledOffMainWarns) {
  auto warnings = diagnose_source(R"(
void f() {
  MPI_Init_thread(0, 0, MPI_THREAD_FUNNELED, &p);
  #pragma omp parallel
  { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
}
)");
  bool found = false;
  for (const auto& w : warnings) {
    if (w.cls == WarningClass::kInitialization) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnostics, CleanSerialProgramSilent) {
  auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &p);
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(warnings.empty());
}

}  // namespace
}  // namespace home::sast
