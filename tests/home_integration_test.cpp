// End-to-end tests of the whole HOME pipeline: run a hybrid MPI/OpenMP
// program on the substrates, analyze the trace, and match violations.
// Covers the paper's Figure 1 and Figure 2 case studies and each of the six
// violation classes of Section III.A — both the violating and the repaired
// variant of each pattern.
#include <gtest/gtest.h>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/sync.hpp"
#include "src/homp/worksharing.hpp"
#include "src/spec/violations.hpp"

namespace home {
namespace {

using simmpi::Comm;
using simmpi::Datatype;
using simmpi::kAnySource;
using simmpi::kAnyTag;
using simmpi::kCommWorld;
using simmpi::Process;
using simmpi::ReduceOp;
using simmpi::Status;
using simmpi::ThreadLevel;
using spec::ViolationType;

CheckConfig two_by_two() {
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.block_timeout_ms = 2000;
  return cfg;
}

// --------------------------------------------------------- paper case studies

TEST(CaseStudy1, PlainInitWithParallelSectionsIsInitializationViolation) {
  // Figure 1: MPI_Init (thread level defaults to SINGLE) followed by
  // omp parallel sections issuing MPI calls.
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init();
    homp::parallel(2, [&] {
      homp::sections({
          [&] {
            if (p.rank() == 0) {
              const int v = 1;
              p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld, {"cs1.send"});
            }
          },
          [&] {
            if (p.rank() == 1) {
              int v = 0;
              p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld, nullptr,
                     {"cs1.recv"});
            }
          },
      });
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kInitialization));
}

TEST(CaseStudy1, InitThreadMultipleRepairsTheProgram) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      homp::sections({
          [&] {
            if (p.rank() == 0) {
              const int v = 1;
              p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
            }
          },
          [&] {
            if (p.rank() == 1) {
              int v = 0;
              p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
            }
          },
      });
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kInitialization));
}

TEST(CaseStudy2, SameTagPingPongIsConcurrentRecvViolation) {
  // Figure 2: two threads per rank run the same send/recv (or recv/send)
  // sequence with one shared tag — message-to-thread matching is undefined
  // and the program can deadlock nondeterministically.
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    const int tag = 0;
    homp::parallel(2, [&] {
      int a = homp::thread_num();
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, 1, tag, kCommWorld, {"cs2.send0"});
        p.recv(&a, 1, Datatype::kInt, 1, tag, kCommWorld, nullptr,
               {"cs2.recv0"});
      } else {
        p.recv(&a, 1, Datatype::kInt, 0, tag, kCommWorld, nullptr,
               {"cs2.recv1"});
        p.send(&a, 1, Datatype::kInt, 0, tag, kCommWorld, {"cs2.send1"});
      }
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kConcurrentRecv));
}

TEST(CaseStudy2, ThreadIdTagsRepairTheProgram) {
  // The common fix the paper cites: distinguish messages with thread-id tags.
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      const int tag = homp::thread_num();
      int a = tag;
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, 1, tag, kCommWorld);
        p.recv(&a, 1, Datatype::kInt, 1, tag, kCommWorld);
      } else {
        p.recv(&a, 1, Datatype::kInt, 0, tag, kCommWorld);
        p.send(&a, 1, Datatype::kInt, 0, tag, kCommWorld);
      }
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kConcurrentRecv));
}

// ------------------------------------------------- V1 Initialization variants

TEST(Initialization, FunneledWithWorkerMpiCallIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kFunneled);
    homp::parallel(2, [&] {
      if (homp::thread_num() == 1) {  // off the main thread: forbidden.
        int v = p.rank();
        p.allreduce(&v, &v, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld,
                    {"v1.funneled"});
      }
    });
    p.finalize();
  });
  EXPECT_TRUE(result.report.has(ViolationType::kInitialization));
}

TEST(Initialization, FunneledWithMasterOnlyMpiIsClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kFunneled);
    homp::parallel(2, [&] {
      homp::master([&] {
        int v = p.rank();
        p.allreduce(&v, &v, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld);
      });
      homp::barrier();
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kInitialization));
}

TEST(Initialization, SerializedWithConcurrentCallsIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kSerialized);
    homp::parallel(2, [&] {
      // Both threads send concurrently without any mutual exclusion.
      const int v = homp::thread_num();
      const int peer = 1 - p.rank();
      p.send(&v, 1, Datatype::kInt, peer, 100 + homp::thread_num(), kCommWorld,
             {"v1.serialized.send"});
    });
    // Drain.
    for (int i = 0; i < 2; ++i) {
      int v;
      p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kInitialization));
}

TEST(Initialization, SerializedWithCriticalGuardIsClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kSerialized);
    homp::parallel(2, [&] {
      homp::critical("mpi", [&] {
        const int v = homp::thread_num();
        const int peer = 1 - p.rank();
        p.send(&v, 1, Datatype::kInt, peer, 100 + homp::thread_num(),
               kCommWorld);
      });
    });
    for (int i = 0; i < 2; ++i) {
      int v;
      p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kInitialization));
}

// -------------------------------------------------- V2 Finalization variants

TEST(Finalization, OffMainThreadIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      if (homp::thread_num() == 1) p.finalize({"v2.finalize"});
    });
  });
  EXPECT_TRUE(result.report.has(ViolationType::kFinalization));
}

TEST(Finalization, ConcurrentWithPendingSendIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      if (homp::thread_num() == 1) {
        const int v = 1;
        const int peer = 1 - p.rank();
        p.send(&v, 1, Datatype::kInt, peer, 0, kCommWorld, {"v2.send"});
      } else {
        p.finalize({"v2.finalize2"});
      }
    });
    int v;
    p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
  });
  EXPECT_TRUE(result.report.has(ViolationType::kFinalization));
}

TEST(Finalization, AfterJoinOnMainThreadIsClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      const int v = homp::thread_num();
      const int peer = 1 - p.rank();
      p.send(&v, 1, Datatype::kInt, peer, homp::thread_num(), kCommWorld);
      int w;
      p.recv(&w, 1, Datatype::kInt, peer, homp::thread_num(), kCommWorld);
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kFinalization));
}

// ----------------------------------------------- V4 ConcurrentRequest variants

TEST(ConcurrentRequest, TwoThreadsWaitSameRequestIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      int buf = 0;
      simmpi::Request shared =
          p.irecv(&buf, 1, Datatype::kInt, 1, 0, kCommWorld);
      homp::parallel(2, [&] {
        p.wait(shared, nullptr, {"v4.wait"});  // both threads: forbidden.
      });
    } else {
      const int v = 9;
      p.send(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kConcurrentRequest));
}

TEST(ConcurrentRequest, DistinctRequestsPerThreadIsClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      homp::parallel(2, [&] {
        int buf = 0;
        simmpi::Request mine = p.irecv(&buf, 1, Datatype::kInt, 1,
                                       homp::thread_num(), kCommWorld);
        p.wait(mine);
      });
    } else {
      homp::parallel(2, [&] {
        const int v = 9;
        p.send(&v, 1, Datatype::kInt, 0, homp::thread_num(), kCommWorld);
      });
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kConcurrentRequest));
}

// --------------------------------------------------------- V5 Probe variants

TEST(Probe, ConcurrentProbeAndRecvSameSourceTagIsViolation) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const int v = i;
        p.send(&v, 1, Datatype::kInt, 1, 5, kCommWorld);
      }
    } else {
      homp::parallel(2, [&] {
        if (homp::thread_num() == 0) {
          Status st;
          p.probe(0, 5, kCommWorld, &st, {"v5.probe"});
          int v;
          p.recv(&v, 1, Datatype::kInt, 0, 5, kCommWorld, nullptr,
                 {"v5.recv.a"});
        } else {
          int v;
          p.recv(&v, 1, Datatype::kInt, 0, 5, kCommWorld, nullptr,
                 {"v5.recv.b"});
        }
      });
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.has(ViolationType::kProbe));
}

TEST(Probe, DistinctTagsPerThreadIsClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      for (int t = 0; t < 2; ++t) {
        const int v = t;
        p.send(&v, 1, Datatype::kInt, 1, t, kCommWorld);
      }
    } else {
      homp::parallel(2, [&] {
        const int tag = homp::thread_num();
        Status st;
        p.probe(0, tag, kCommWorld, &st);
        int v;
        p.recv(&v, 1, Datatype::kInt, 0, tag, kCommWorld);
      });
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kProbe));
}

// ------------------------------------------------ V6 CollectiveCall variants

TEST(CollectiveCall, ConcurrentBarriersOnOneCommIsViolation) {
  // Both threads of each rank enter a barrier on COMM_WORLD concurrently.
  // This can deadlock in a real MPI (and in simmpi, where the second round
  // may never fill up) — HOME still reports it because wrappers log at call
  // entry. The run itself is allowed to fail.
  CheckConfig cfg = two_by_two();
  cfg.block_timeout_ms = 300;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] { p.barrier(kCommWorld, {"v6.barrier"}); });
    p.finalize();
  });
  EXPECT_TRUE(result.report.has(ViolationType::kCollectiveCall));
}

TEST(CollectiveCall, PerThreadCommunicatorsAreClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    Comm comms[2] = {p.comm_dup(kCommWorld), p.comm_dup(kCommWorld)};
    homp::parallel(2, [&] {
      p.barrier(comms[homp::thread_num()]);
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kCollectiveCall));
}

TEST(CollectiveCall, SerializedCollectivesViaCriticalAreClean) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    // One collective per rank, issued from the master only.
    homp::parallel(2, [&] {
      homp::master([&] { p.barrier(kCommWorld); });
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_FALSE(result.report.has(ViolationType::kCollectiveCall));
}

// -------------------------------------------------------- pipeline mechanics

TEST(Pipeline, CleanHybridProgramReportsNothing) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    std::vector<double> field(64, 1.0);
    homp::parallel(2, [&] {
      homp::for_range(0, 64, [&](int i) {
        field[static_cast<std::size_t>(i)] *= 2.0;
      });
      homp::single([&] {
        double sum = 0, total = 0;
        for (double x : field) sum += x;
        p.allreduce(&sum, &total, 1, Datatype::kDouble, ReduceOp::kSum,
                    kCommWorld);
      });
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

TEST(Pipeline, SelectiveFilterSkipsSerialCalls) {
  CheckConfig cfg = two_by_two();
  cfg.session.filter = InstrumentFilter::kParallelOnly;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    // Serial-phase collective: must be filtered out.
    p.barrier(kCommWorld);
    p.barrier(kCommWorld);
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.clean());
  EXPECT_EQ(result.report.stats().skipped_calls, 4u);  // 2 barriers x 2 ranks.
}

TEST(Pipeline, SystematicFilterInstrumentsEverything) {
  CheckConfig cfg = two_by_two();
  cfg.session.filter = InstrumentFilter::kAll;
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    p.barrier(kCommWorld);
    p.finalize();
  });
  EXPECT_EQ(result.report.stats().skipped_calls, 0u);
  // Serial barriers from distinct ranks must NOT be reported as violations
  // even under systematic instrumentation (different processes).
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

TEST(Pipeline, PlanFilterHonorsCallsiteList) {
  CheckConfig cfg = two_by_two();
  cfg.session.filter = InstrumentFilter::kPlan;
  cfg.session.plan = {"planned.recv"};
  auto result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      if (p.rank() == 0) {
        const int v = homp::thread_num();
        p.send(&v, 1, Datatype::kInt, 1, 9, kCommWorld, {"unplanned.send"});
      } else {
        int v;
        p.recv(&v, 1, Datatype::kInt, 0, 9, kCommWorld, nullptr,
               {"planned.recv"});
      }
    });
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok());
  // Both recvs instrumented -> ConcurrentRecv found even with the narrow plan.
  EXPECT_TRUE(result.report.has(ViolationType::kConcurrentRecv));
  EXPECT_GT(result.report.stats().skipped_calls, 0u);
}

TEST(Pipeline, ReportRendersViolations) {
  auto result = check_program(two_by_two(), [](Process& p) {
    p.init();
    homp::parallel(2, [&] { homp::barrier(); });
    p.finalize();
  });
  const std::string text = result.report.to_string();
  EXPECT_NE(text.find("InitializationViolation"), std::string::npos);
}

}  // namespace
}  // namespace home
