// Tests of the Figure-3 "Final Reports" merge: static warnings x dynamic
// violations, including a full static->dynamic pipeline round trip.
#include <gtest/gtest.h>

#include "src/home/check.hpp"
#include "src/home/final_report.hpp"
#include "src/homp/runtime.hpp"
#include "src/sast/diagnostics.hpp"

namespace home {
namespace {

using sast::StaticWarning;
using sast::WarningClass;
using spec::Violation;
using spec::ViolationType;

Report dynamic_report(std::vector<Violation> violations) {
  return Report(std::move(violations), ReportStats{});
}

TEST(FinalReport, EmptyInputsAreClean) {
  FinalReport merged = merge_reports({}, dynamic_report({}));
  EXPECT_TRUE(merged.clean());
  EXPECT_NE(merged.to_string().find("no thread-safety issues"),
            std::string::npos);
}

TEST(FinalReport, StaticOnlyEntrySurvives) {
  StaticWarning w;
  w.cls = WarningClass::kConcurrentRecv;
  w.site = "main:10:MPI_Recv";
  w.message = "shared tag";
  FinalReport merged = merge_reports({w}, dynamic_report({}));
  ASSERT_EQ(merged.entries().size(), 1u);
  EXPECT_EQ(merged.entries()[0].confirmation, Confirmation::kStaticOnly);
  EXPECT_EQ(merged.count(Confirmation::kStaticOnly), 1u);
}

TEST(FinalReport, DynamicOnlyEntrySurvives) {
  Violation v;
  v.type = ViolationType::kCollectiveCall;
  v.callsite1 = "x.barrier";
  FinalReport merged = merge_reports({}, dynamic_report({v}));
  ASSERT_EQ(merged.entries().size(), 1u);
  EXPECT_EQ(merged.entries()[0].confirmation, Confirmation::kDynamicOnly);
}

TEST(FinalReport, MatchingClassUpgradesToConfirmed) {
  StaticWarning w;
  w.cls = WarningClass::kConcurrentRecv;
  w.site = "main:10:MPI_Recv";
  Violation v;
  v.type = ViolationType::kConcurrentRecv;
  v.callsite1 = "main:10:MPI_Recv";
  v.callsite2 = "main:14:MPI_Recv";
  FinalReport merged = merge_reports({w}, dynamic_report({v}));
  ASSERT_EQ(merged.entries().size(), 1u);
  EXPECT_EQ(merged.entries()[0].confirmation, Confirmation::kBoth);
  EXPECT_EQ(merged.count(Confirmation::kBoth), 1u);
  const std::string text = merged.to_string();
  EXPECT_NE(text.find("confirmed"), std::string::npos);
}

TEST(FinalReport, ClassesStaySeparate) {
  StaticWarning w;
  w.cls = WarningClass::kProbe;
  w.site = "a";
  Violation v;
  v.type = ViolationType::kFinalization;
  v.callsite1 = "b";
  FinalReport merged = merge_reports({w}, dynamic_report({v}));
  EXPECT_EQ(merged.entries().size(), 2u);
  EXPECT_EQ(merged.count(Confirmation::kBoth), 0u);
}

TEST(FinalReport, EndToEndPipelineConfirmsFigure2) {
  // Static phase on the Figure 2 source...
  const auto warnings = sast::diagnose_source(R"(
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  int tag = 0;
  #pragma omp parallel for
  for (j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD, st);
    }
    if (rank == 1) {
      MPI_Recv(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, st);
      MPI_Send(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD);
    }
  }
}
)");

  // ...dynamic phase on the executable equivalent...
  CheckConfig cfg;
  cfg.nranks = 2;
  auto dynamic = check_program(cfg, [](simmpi::Process& p) {
    p.init_thread(simmpi::ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = homp::thread_num();
      if (p.rank() == 0) {
        p.send(&a, 1, simmpi::Datatype::kInt, 1, 0, simmpi::kCommWorld,
               {"main:9:MPI_Send"});
        p.recv(&a, 1, simmpi::Datatype::kInt, 1, 0, simmpi::kCommWorld, nullptr,
               {"main:10:MPI_Recv"});
      } else {
        p.recv(&a, 1, simmpi::Datatype::kInt, 0, 0, simmpi::kCommWorld, nullptr,
               {"main:13:MPI_Recv"});
        p.send(&a, 1, simmpi::Datatype::kInt, 0, 0, simmpi::kCommWorld,
               {"main:14:MPI_Send"});
      }
    });
    p.finalize();
  });

  // ...merged: the ConcurrentRecv class must come out "confirmed".
  FinalReport merged = merge_reports(warnings, dynamic.report);
  bool confirmed_recv = false;
  for (const auto& entry : merged.entries()) {
    if (entry.type == ViolationType::kConcurrentRecv &&
        entry.confirmation == Confirmation::kBoth) {
      confirmed_recv = true;
    }
  }
  EXPECT_TRUE(confirmed_recv) << merged.to_string();
}

}  // namespace
}  // namespace home
