// Provenance-engine tests (ISSUE-9 acceptance):
//  * certificates built from a detector run verify against an independent
//    HB replay of the raw trace, including witness chains through barriers,
//  * the verifier is adversarial: corrupted chains, swapped endpoints,
//    forged locksets, tampered stamps/frontiers and mismatched keys are all
//    rejected with a reason,
//  * ddmin minimization converges to the minimal reproducing decision
//    subset under a synthetic oracle and stays honest when the seed itself
//    does not reproduce,
//  * a 16-seed paranoid hidden-race sweep certifies every finding and every
//    minimized schedule replays to the same violation key, and
//  * the paper injection configs certify cleanly under --paranoid.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/hidden_race.hpp"
#include "src/detect/race_detector.hpp"
#include "src/diagnose/certificate.hpp"
#include "src/diagnose/minimize.hpp"
#include "src/diagnose/provenance.hpp"
#include "src/explore/sweeper.hpp"
#include "src/home/check.hpp"
#include "src/home/html_report.hpp"
#include "src/spec/matcher.hpp"
#include "src/spec/monitored.hpp"
#include "src/spec/violations.hpp"
#include "src/trace/trace_log.hpp"

namespace home::diagnose {
namespace {

using trace::EventKind;
using trace::MpiCallType;

// Builds traces shaped exactly like HomeWrappers' output (spec_test idiom).
class TraceBuilder {
 public:
  struct CallSpec {
    MpiCallType type = MpiCallType::kRecv;
    int rank = 0;
    trace::Tid tid = 0;
    int peer = -1;
    int tag = -1;
    std::uint64_t comm = 1;
    std::uint64_t request = 0;
    bool on_main = false;
    std::uint8_t provided = 3;  // MPI_THREAD_MULTIPLE by default.
    std::vector<trace::ObjId> locks;
    const char* site = nullptr;
  };

  void call(const CallSpec& spec) {
    trace::MpiCallInfo info;
    info.type = spec.type;
    info.peer = spec.peer;
    info.tag = spec.tag;
    info.comm = spec.comm;
    info.request = spec.request;
    info.on_main_thread = spec.on_main;
    info.provided = spec.provided;
    if (spec.site) info.callsite = log_.strings().intern(spec.site);

    trace::Event call;
    call.tid = spec.tid;
    call.rank = spec.rank;
    call.kind = EventKind::kMpiCall;
    call.locks_held = spec.locks;
    call.mpi = info;
    const trace::Seq seq = log_.emit(std::move(call));

    for (spec::MonitoredVar var : spec::monitored_vars_for(spec.type)) {
      trace::Event write;
      write.tid = spec.tid;
      write.rank = spec.rank;
      write.kind = EventKind::kMemWrite;
      write.obj = spec::monitored_var_id(spec.rank, var);
      write.aux = seq;
      write.locks_held = spec.locks;
      log_.emit(std::move(write));
    }
  }

  void barrier(std::initializer_list<trace::Tid> tids, trace::ObjId id) {
    for (trace::Tid tid : tids) {
      trace::Event e;
      e.tid = tid;
      e.kind = EventKind::kBarrier;
      e.obj = id;
      e.aux = tids.size();
      log_.emit(std::move(e));
    }
  }

  trace::TraceLog log_;
};

// The HB configuration the default (kHybrid) RaceDetector runs with.
detect::HappensBeforeConfig default_hb_config() {
  detect::HappensBeforeConfig cfg;
  cfg.lock_edges = false;
  return cfg;
}

const spec::Violation* find_violation(const std::vector<spec::Violation>& vs,
                                      spec::ViolationType type) {
  for (const spec::Violation& v : vs) {
    if (v.type == type) return &v;
  }
  return nullptr;
}

/// Build + return the certificate of a trace's kConcurrentRecv finding,
/// together with everything the verifier needs.
struct Built {
  Certificate cert;
  std::vector<trace::Event> events;
  trace::StringTable* strings = nullptr;
};

Built build_recv_certificate(TraceBuilder& tb) {
  detect::RaceDetector detector;
  const detect::ConcurrencyReport report =
      detector.analyze(tb.log_.sorted_events());
  spec::Matcher matcher(&tb.log_.strings());
  const auto violations = matcher.match(report);
  const spec::Violation* v =
      find_violation(violations, spec::ViolationType::kConcurrentRecv);
  EXPECT_NE(v, nullptr) << "trace must produce a ConcurrentRecv finding";
  Built built;
  built.strings = &tb.log_.strings();
  built.events = tb.log_.sorted_events();
  if (v) {
    built.cert =
        build_certificate(report.hb(), *v, built.strings, default_hb_config());
  }
  return built;
}

bool verify(const Built& b, const Certificate& cert, std::string* why = nullptr) {
  return verify_certificate(cert, b.events, b.strings, default_hb_config(), why);
}

/// Two unordered same-(source,tag,comm) receives with no synchronization at
/// all between the threads.
void unsynchronized_recvs(TraceBuilder& tb) {
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5,
           .site = "prov.r1"});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5,
           .site = "prov.r2"});
}

/// Both threads pass a barrier first, then receive concurrently: the
/// destination *has* synchronized with the source thread (dst_view > 0), so
/// the witness must carry a non-empty chain through the barrier edge.
void barrier_then_recvs(TraceBuilder& tb) {
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 1, .peer = 1, .tag = 0,
           .site = "prov.s1"});
  tb.barrier({1, 2}, 99);
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5,
           .site = "prov.r1"});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5,
           .site = "prov.r2"});
}

// --------------------------------------------------------- build + verify

TEST(Certificate, BuildsAndVerifiesUnsynchronizedRecvs) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  EXPECT_TRUE(b.cert.has_pair);
  EXPECT_TRUE(b.cert.hb_unordered);
  EXPECT_TRUE(b.cert.disjoint_locks);
  // Neither thread ever learned of the other: both views are zero and the
  // chains are empty.
  EXPECT_EQ(b.cert.w12.dst_view, 0u);
  EXPECT_EQ(b.cert.w21.dst_view, 0u);
  EXPECT_TRUE(b.cert.w12.chain.empty());
  EXPECT_TRUE(b.cert.w21.chain.empty());
  EXPECT_GT(b.cert.w12.src_own, b.cert.w12.dst_view);
  EXPECT_GT(b.cert.w21.src_own, b.cert.w21.dst_view);
  EXPECT_FALSE(b.cert.context1.empty());

  std::string why;
  EXPECT_TRUE(verify(b, b.cert, &why)) << why;
}

TEST(Certificate, WitnessChainCrossesBarrier) {
  TraceBuilder tb;
  barrier_then_recvs(tb);
  const Built b = build_recv_certificate(tb);
  EXPECT_TRUE(b.cert.hb_unordered);
  // At least one direction saw the other thread through the barrier: its
  // view is nonzero and the chain that carried it is non-empty and ends in
  // a barrier hop.
  const NonOrderWitness& w =
      b.cert.w12.dst_view > 0 ? b.cert.w12 : b.cert.w21;
  ASSERT_GT(w.dst_view, 0u);
  ASSERT_FALSE(w.chain.empty());
  EXPECT_NE(w.frontier, 0u);
  const bool has_barrier_hop = std::any_of(
      w.chain.begin(), w.chain.end(),
      [](const ChainLink& l) { return l.edge == EdgeKind::kBarrier; });
  EXPECT_TRUE(has_barrier_hop);

  std::string why;
  EXPECT_TRUE(verify(b, b.cert, &why)) << why;
}

TEST(Certificate, HumanRenderingNamesTheKey) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  const std::string text = b.cert.to_string();
  EXPECT_NE(text.find("Causal chain for " + b.cert.key), std::string::npos);
  EXPECT_NE(text.find("prov.r1"), std::string::npos);
  EXPECT_NE(text.find("prov.r2"), std::string::npos);
}

// ------------------------------------------------------ adversarial checks

TEST(CertificateAdversarial, RejectsSwappedEndpoints) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  Certificate forged = b.cert;
  std::swap(forged.e1, forged.e2);
  std::string why;
  EXPECT_FALSE(verify(b, forged, &why));
  EXPECT_FALSE(why.empty());
}

TEST(CertificateAdversarial, RejectsDroppedChainLink) {
  TraceBuilder tb;
  barrier_then_recvs(tb);
  const Built b = build_recv_certificate(tb);
  Certificate forged = b.cert;
  NonOrderWitness& w = forged.w12.dst_view > 0 ? forged.w12 : forged.w21;
  ASSERT_FALSE(w.chain.empty());
  w.chain.pop_back();
  std::string why;
  EXPECT_FALSE(verify(b, forged, &why));
  EXPECT_FALSE(why.empty());
}

TEST(CertificateAdversarial, RejectsForgedLockset) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  Certificate forged = b.cert;
  forged.e1.locks.push_back(0x1000);  // claim a lock the event never held.
  std::string why;
  EXPECT_FALSE(verify(b, forged, &why));
  EXPECT_NE(why.find("lock"), std::string::npos) << why;
}

TEST(CertificateAdversarial, RejectsTamperedStampInequality) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  {
    Certificate forged = b.cert;
    forged.w12.dst_view += 1;  // pretend dst saw more than it did.
    EXPECT_FALSE(verify(b, forged));
  }
  {
    Certificate forged = b.cert;
    forged.e1.stamp_own += 7;  // inflate the endpoint's own clock.
    EXPECT_FALSE(verify(b, forged));
  }
}

TEST(CertificateAdversarial, RejectsTamperedFrontier) {
  TraceBuilder tb;
  barrier_then_recvs(tb);
  const Built b = build_recv_certificate(tb);
  Certificate forged = b.cert;
  NonOrderWitness& w = forged.w12.dst_view > 0 ? forged.w12 : forged.w21;
  ASSERT_NE(w.frontier, 0u);
  w.frontier = w.dst;  // point the frontier at the wrong event.
  std::string why;
  EXPECT_FALSE(verify(b, forged, &why));
  EXPECT_FALSE(why.empty());
}

TEST(CertificateAdversarial, RejectsMismatchedKey) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  Certificate forged = b.cert;
  forged.key += "|forged";
  EXPECT_FALSE(verify(b, forged));
}

// ----------------------------------------------------------------- ddmin

explore::Schedule synthetic_schedule(int n) {
  explore::Schedule s;
  s.strategy = "synthetic";
  s.seed = 7;
  for (int i = 0; i < n; ++i) {
    explore::Decision d;
    d.kind = explore::HookKind::kWildcardPick;
    d.rank = 0;
    d.lane = 0;
    d.site = "ddmin.site";
    d.occurrence = static_cast<std::uint64_t>(i);
    d.is_pick = true;
    d.value = static_cast<std::uint64_t>(i);
    s.decisions.push_back(d);
  }
  return s;
}

bool contains_occurrence(const explore::Schedule& s, std::uint64_t occ) {
  for (const explore::Decision& d : s.decisions) {
    if (d.occurrence == occ) return true;
  }
  return false;
}

TEST(Minimize, DdminConvergesToTheCulpritPair) {
  const explore::Schedule seed = synthetic_schedule(8);
  int calls = 0;
  const MinimizeResult result = ddmin_schedule(
      seed,
      [&](const explore::Schedule& c) {
        ++calls;
        return contains_occurrence(c, 2) && contains_occurrence(c, 5);
      });
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.original_decisions, 8u);
  ASSERT_EQ(result.schedule.decisions.size(), 2u);
  EXPECT_TRUE(contains_occurrence(result.schedule, 2));
  EXPECT_TRUE(contains_occurrence(result.schedule, 5));
  EXPECT_EQ(result.replays, calls);
  EXPECT_GT(calls, 0);
}

TEST(Minimize, NonReproducingSeedReturnsUnverified) {
  const explore::Schedule seed = synthetic_schedule(4);
  const MinimizeResult result =
      ddmin_schedule(seed, [](const explore::Schedule&) { return false; });
  EXPECT_FALSE(result.verified);
  EXPECT_EQ(result.schedule.decisions.size(), seed.decisions.size());
  EXPECT_EQ(result.replays, 1);  // only the seed check was spent.
}

TEST(Minimize, AlwaysReproducingShrinksToEmpty) {
  const explore::Schedule seed = synthetic_schedule(5);
  const MinimizeResult result =
      ddmin_schedule(seed, [](const explore::Schedule&) { return true; });
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.schedule.decisions.empty());
}

TEST(Minimize, RespectsReplayBudget) {
  const explore::Schedule seed = synthetic_schedule(16);
  MinimizeOptions opts;
  opts.max_replays = 3;
  int calls = 0;
  const MinimizeResult result = ddmin_schedule(
      seed,
      [&](const explore::Schedule& c) {
        ++calls;
        return contains_occurrence(c, 11);
      },
      opts);
  EXPECT_LE(calls, 3);
  EXPECT_LE(result.replays, 3);
}

// ------------------------------------------------------- report + exports

TEST(Provenance, JsonNamesEveryCertificate) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  ProvenanceReport report;
  report.certificates.push_back(b.cert);
  report.verified = 1;
  const std::string json = provenance_json(report);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"certificates\""), std::string::npos);
  EXPECT_NE(json.find("\"witnesses\""), std::string::npos);
  EXPECT_NE(json.find("prov.r1"), std::string::npos);
  EXPECT_EQ(report.find(b.cert.key)->key, b.cert.key);
  EXPECT_EQ(report.find("no-such-key"), nullptr);
}

TEST(Provenance, FlowIdsAreStableAndNonZero) {
  const std::uint64_t a = flow_id_for_key("2|0|x|y|comm1");
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, flow_id_for_key("2|0|x|y|comm1"));
  EXPECT_NE(a, flow_id_for_key("2|0|x|y|comm2"));
}

TEST(Provenance, HtmlReportRendersCausalChain) {
  TraceBuilder tb;
  unsynchronized_recvs(tb);
  const Built b = build_recv_certificate(tb);
  ProvenanceReport report;
  report.certificates.push_back(b.cert);
  const FinalReport empty_final(std::vector<FinalEntry>{});
  const std::string html = render_html(empty_final, ReportStats{}, "test", &report);
  EXPECT_NE(html.find("Causal chain"), std::string::npos);
  EXPECT_NE(html.find("prov.r1"), std::string::npos);
  // Without a provenance report the section is absent.
  const std::string plain = render_html(empty_final, ReportStats{}, "test");
  EXPECT_EQ(plain.find("Causal chain"), std::string::npos);
}

// ------------------------------------------------- end-to-end (hidden app)

TEST(Sweep, SixteenSeedParanoidSweepCertifiesEveryFinding) {
  explore::SweepConfig cfg;
  cfg.nranks = apps::kHiddenRaceRanks;
  cfg.nthreads = 2;
  cfg.schedules = 16;
  cfg.base_seed = 1;
  cfg.strategy = explore::StrategyKind::kWildcardReorder;
  cfg.diagnose.enabled = true;
  cfg.diagnose.paranoid = true;
  cfg.minimize = true;
  explore::Sweeper sweeper(cfg);
  const auto rank_main = [](simmpi::Process& p) {
    apps::run_hidden_race_rank(p);
  };
  const explore::SweepResult result = sweeper.run(rank_main);

  ASSERT_FALSE(result.findings.empty());
  EXPECT_GT(result.certificates, 0u);
  EXPECT_EQ(result.certificates_verified, result.certificates);
  EXPECT_TRUE(result.certificate_failures.empty())
      << result.certificate_failures.front();

  for (const explore::SweepFinding& f : result.findings) {
    ASSERT_NE(f.certificate, nullptr) << f.key;
    EXPECT_EQ(f.certificate->key, f.key);
    if (f.schedule_index >= 0 && !f.schedule.empty()) {
      // Every exploration finding's ddmin result replayed to the same key.
      EXPECT_TRUE(f.minimized_verified) << f.key;
      EXPECT_LE(f.minimized.decisions.size(), f.schedule.decisions.size());
      // And an independent replay of the minimized schedule agrees.
      const std::set<std::string> keys = sweeper.replay(f.minimized, rank_main);
      EXPECT_EQ(keys.count(f.key), 1u) << f.key;
    }
  }
}

TEST(Apps, PaperInjectionConfigsCertifyUnderParanoid) {
  for (apps::AppKind kind :
       {apps::AppKind::kLU, apps::AppKind::kBT, apps::AppKind::kSP}) {
    const apps::AppConfig app = apps::paper_config(kind, 2, 2);
    CheckConfig cfg;
    cfg.nranks = app.nranks;
    cfg.nthreads = app.nthreads;
    cfg.session.diagnose.enabled = true;
    cfg.session.diagnose.paranoid = true;
    const CheckResult result = check_program(
        cfg, [&](simmpi::Process& p) { apps::run_app_rank(app, p); });
    ASSERT_FALSE(result.report.violations().empty())
        << static_cast<int>(kind);
    EXPECT_EQ(result.provenance.certificates.size(),
              result.report.violations().size())
        << static_cast<int>(kind);
    ASSERT_TRUE(result.provenance.verify_failures.empty())
        << result.provenance.verify_failures.front();
    EXPECT_EQ(result.provenance.verified,
              result.provenance.certificates.size())
        << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace home::diagnose
