// Exploration subsystem tests (ISSUE-7 acceptance):
//  * schedules round-trip through the text format,
//  * hooks are inert no-ops while no Explorer is installed,
//  * strategies are deterministic in their seed and diverge across seeds,
//  * replay feeds recorded decisions back at the recorded keys,
//  * the hidden-race corpus app's V3 is invisible to a single uncontrolled
//    run but found by a bounded seeded sweep, and
//  * replaying the finding's schedule reproduces the identical violation
//    key set, three times over.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/apps/hidden_race.hpp"
#include "src/explore/hooks.hpp"
#include "src/explore/schedule.hpp"
#include "src/explore/strategy.hpp"
#include "src/explore/sweeper.hpp"

namespace home::explore {
namespace {

const char kHiddenKey[] = "2|0|hidden.racy_recv|hidden.racy_recv|comm1";

Sweeper::RankMain hidden_main() {
  return [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
}

SweepConfig hidden_config(StrategyKind strategy, int schedules,
                          std::uint64_t base_seed = 1) {
  SweepConfig cfg;
  cfg.nranks = apps::kHiddenRaceRanks;
  cfg.nthreads = 2;
  cfg.schedules = schedules;
  cfg.base_seed = base_seed;
  cfg.strategy = strategy;
  return cfg;
}

// ----------------------------------------------------------- Schedule I/O

TEST(Schedule, TextRoundtrip) {
  Schedule s;
  s.strategy = "random_walk";
  s.seed = 42;
  Decision yield;
  yield.kind = HookKind::kBarrier;
  yield.rank = 1;
  yield.lane = 2;
  yield.site = "homp.barrier";
  yield.occurrence = 3;
  yield.is_pick = false;
  yield.value = 150;
  s.decisions.push_back(yield);
  Decision pick;
  pick.kind = HookKind::kWildcardPick;
  pick.rank = 0;
  pick.lane = 0;
  pick.site = "mailbox.wildcard";
  pick.occurrence = 0;
  pick.is_pick = true;
  pick.value = 1;
  s.decisions.push_back(pick);

  Schedule parsed;
  ASSERT_TRUE(Schedule::parse(s.to_string(), &parsed));
  EXPECT_EQ(parsed.strategy, s.strategy);
  EXPECT_EQ(parsed.seed, s.seed);
  ASSERT_EQ(parsed.decisions.size(), 2u);
  EXPECT_EQ(parsed.decisions[0].kind, HookKind::kBarrier);
  EXPECT_EQ(parsed.decisions[0].site, "homp.barrier");
  EXPECT_EQ(parsed.decisions[0].value, 150u);
  EXPECT_FALSE(parsed.decisions[0].is_pick);
  EXPECT_TRUE(parsed.decisions[1].is_pick);
  EXPECT_EQ(parsed.decisions[1].value, 1u);
}

TEST(Schedule, FileRoundtrip) {
  Schedule s;
  s.strategy = "wildcard_reorder";
  s.seed = 7;
  Decision d;
  d.kind = HookKind::kRecvMatch;
  d.rank = 2;
  d.site = "mailbox.match";
  d.is_pick = true;
  d.value = 1;
  s.decisions.push_back(d);

  const std::string path = "explore_test_roundtrip.schedule";
  ASSERT_TRUE(s.save(path));
  Schedule loaded;
  ASSERT_TRUE(Schedule::load(path, &loaded));
  std::remove(path.c_str());
  EXPECT_EQ(loaded.to_string(), s.to_string());
}

TEST(Schedule, HookKindNamesRoundtrip) {
  for (int i = 0; i < kHookKindCount; ++i) {
    const HookKind kind = static_cast<HookKind>(i);
    HookKind parsed;
    ASSERT_TRUE(parse_hook_kind(hook_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  HookKind ignored;
  EXPECT_FALSE(parse_hook_kind("no-such-kind", &ignored));
}

TEST(Strategy, KindNamesParse) {
  StrategyKind kind;
  ASSERT_TRUE(parse_strategy_kind("random", &kind));
  EXPECT_EQ(kind, StrategyKind::kRandomWalk);
  ASSERT_TRUE(parse_strategy_kind("wildcard", &kind));
  EXPECT_EQ(kind, StrategyKind::kWildcardReorder);
  ASSERT_TRUE(parse_strategy_kind("pct", &kind));
  EXPECT_EQ(kind, StrategyKind::kPct);
  EXPECT_FALSE(parse_strategy_kind("bogus", &kind));
}

// ------------------------------------------------------------------ Hooks

TEST(Hooks, DisabledHooksAreInert) {
  ASSERT_FALSE(active());
  // No explorer installed: yields return immediately, picks take default 0.
  yield_point(HookKind::kBarrier, 0, "test.site");
  EXPECT_EQ(pick_point(HookKind::kWildcardPick, 0, "test.site", 5), 0u);
  EXPECT_EQ(pick_point(HookKind::kRecvMatch, 0, "test.site", 1), 0u);
}

TEST(Hooks, ExplorerRecordsDecisionsAndOccurrences) {
  Explorer explorer(make_replay_strategy(Schedule{}));  // all-default replay.
  install(&explorer);
  ASSERT_TRUE(active());
  yield_point(HookKind::kCritical, 1, "crit");
  yield_point(HookKind::kCritical, 1, "crit");
  EXPECT_EQ(pick_point(HookKind::kWildcardPick, 0, "wc", 3), 0u);
  uninstall();
  EXPECT_FALSE(active());
  EXPECT_EQ(explorer.hook_hits(), 3u);
  // Default decisions (no delay, pick 0) are not recorded — the log stays
  // minimal, holding only the perturbations.
  EXPECT_TRUE(explorer.schedule().decisions.empty());
  EXPECT_NE(explorer.order_signature(), 0u);
}

// ------------------------------------------------------------- Strategies

std::vector<std::uint64_t> sample_decisions(Strategy& s) {
  std::vector<std::uint64_t> out;
  for (int i = 0; i < 32; ++i) {
    YieldContext y;
    y.kind = HookKind::kMpiCall;
    y.rank = i % 3;
    y.lane = i % 2;
    y.site = "probe.site";
    y.occurrence = static_cast<std::uint64_t>(i);
    y.in_parallel = true;
    out.push_back(s.on_yield(y));
    PickContext p;
    p.kind = HookKind::kWildcardPick;
    p.rank = i % 3;
    p.site = "pick.site";
    p.occurrence = static_cast<std::uint64_t>(i);
    p.n_eligible = 4;
    out.push_back(s.on_pick(p));
  }
  return out;
}

TEST(Strategy, DeterministicInSeedDivergentAcrossSeeds) {
  for (const StrategyKind kind :
       {StrategyKind::kRandomWalk, StrategyKind::kPct,
        StrategyKind::kDelayInjection, StrategyKind::kWildcardReorder}) {
    const auto a1 = sample_decisions(*make_strategy(kind, 11));
    const auto a2 = sample_decisions(*make_strategy(kind, 11));
    EXPECT_EQ(a1, a2) << "seed 11, kind " << strategy_kind_name(kind);
    bool any_diverges = false;
    for (std::uint64_t seed = 12; seed < 20; ++seed) {
      if (sample_decisions(*make_strategy(kind, seed)) != a1) {
        any_diverges = true;
        break;
      }
    }
    EXPECT_TRUE(any_diverges)
        << "seeds never change decisions for " << strategy_kind_name(kind);
  }
}

TEST(Strategy, ReplayFeedsBackRecordedDecisions) {
  Schedule s;
  Decision d;
  d.kind = HookKind::kWildcardPick;
  d.rank = 0;
  d.lane = 0;
  d.site = "mailbox.wildcard";
  d.occurrence = 1;
  d.is_pick = true;
  d.value = 2;
  s.decisions.push_back(d);
  auto replay = make_replay_strategy(s);

  PickContext ctx;
  ctx.kind = HookKind::kWildcardPick;
  ctx.rank = 0;
  ctx.lane = 0;
  ctx.site = "mailbox.wildcard";
  ctx.n_eligible = 3;
  ctx.occurrence = 0;
  EXPECT_EQ(replay->on_pick(ctx), 0u);  // unrecorded occurrence: default.
  ctx.occurrence = 1;
  EXPECT_EQ(replay->on_pick(ctx), 2u);  // the recorded decision.
  ctx.n_eligible = 2;
  EXPECT_EQ(replay->on_pick(ctx), 1u);  // clamped to the eligible range.
}

// ------------------------------------------------- Hidden-race acceptance

TEST(Sweep, HiddenViolationMissedByBaselineFoundBySweep) {
  // A single uncontrolled run never reaches the racy branch; a bounded
  // wildcard sweep must find it (ISSUE-7 acceptance).
  SweepConfig cfg = hidden_config(StrategyKind::kWildcardReorder, 16);
  Sweeper sweeper(cfg);
  const SweepResult result = sweeper.run(hidden_main());

  EXPECT_TRUE(result.run_errors.empty()) << result.to_string();
  EXPECT_TRUE(result.baseline_keys.empty())
      << "baseline unexpectedly reached the hidden branch";
  ASSERT_GE(result.new_vs_baseline(), 1u) << result.to_string();
  bool found = false;
  for (const SweepFinding& f : result.findings) {
    if (f.key == kHiddenKey) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
  // The coverage curve is monotone and ends at the total unique count.
  for (std::size_t i = 1; i < result.coverage_curve.size(); ++i) {
    EXPECT_GE(result.coverage_curve[i], result.coverage_curve[i - 1]);
  }
  EXPECT_EQ(result.coverage_curve.back(), result.findings.size());
  // More than one distinct sync-point ordering was exercised.
  EXPECT_GT(result.orderings.size(), 1u);
}

TEST(Sweep, ReplayReproducesExactViolationKeys) {
  SweepConfig cfg = hidden_config(StrategyKind::kWildcardReorder, 16);
  Sweeper sweeper(cfg);
  const SweepResult result = sweeper.run(hidden_main());

  const SweepFinding* finding = nullptr;
  for (const SweepFinding& f : result.findings) {
    if (f.key == kHiddenKey) finding = &f;
  }
  ASSERT_NE(finding, nullptr) << result.to_string();
  ASSERT_FALSE(finding->schedule.decisions.empty());

  // Byte-identical violation keys on every replay (3 repeats).
  const std::set<std::string> first =
      sweeper.replay(finding->schedule, hidden_main());
  EXPECT_EQ(first.count(kHiddenKey), 1u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sweeper.replay(finding->schedule, hidden_main()), first);
  }
}

TEST(Sweep, FixedSeedsReproduceFindings) {
  // Wildcard reordering makes no timing decisions, so the whole sweep is a
  // deterministic function of (strategy, base_seed).
  SweepConfig cfg = hidden_config(StrategyKind::kWildcardReorder, 8);
  const SweepResult a = Sweeper(cfg).run(hidden_main());
  const SweepResult b = Sweeper(cfg).run(hidden_main());
  std::set<std::string> keys_a, keys_b;
  for (const SweepFinding& f : a.findings) keys_a.insert(f.key);
  for (const SweepFinding& f : b.findings) keys_b.insert(f.key);
  EXPECT_EQ(keys_a, keys_b);
  EXPECT_EQ(a.coverage_curve, b.coverage_curve);
}

TEST(Sweep, RandomWalkAlsoFindsHiddenViolation) {
  // The acceptance corpus app must be reachable by the generic random walk
  // within a bounded seed budget, not just the wildcard specialist.
  SweepConfig cfg = hidden_config(StrategyKind::kRandomWalk, 24);
  const SweepResult result = Sweeper(cfg).run(hidden_main());
  bool found = false;
  for (const SweepFinding& f : result.findings) {
    if (f.key == kHiddenKey) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

// --------------------------------------- Guided exploration (ISSUE-8)

// The hidden app's guidance, as src/sast/commstat derives it from the
// static model: two two-way wildcard pick sites, one per round.  Built by
// hand here so this binary doesn't need the static engine; the derivation
// itself is covered by commstat_test.
std::shared_ptr<const StaticGuidance> hidden_guidance() {
  auto g = std::make_shared<StaticGuidance>();
  AmbiguousSite pick;
  pick.site = "hidden.pick";
  pick.alternatives = 2;
  pick.occurrences = 1;
  g->ambiguous.push_back(pick);
  pick.site = "hidden.pick2";
  g->ambiguous.push_back(pick);
  OrderedPair ordered;
  ordered.before = "hidden.send_low";
  ordered.after = "hidden.send_high";
  ordered.why = "program-order(rank 1)";
  g->ordered.push_back(ordered);
  return g;
}

TEST(Strategy, GuidedPerturbsOnlyStaticallyAmbiguousSites) {
  const auto guidance = hidden_guidance();
  const auto s = make_strategy(StrategyKind::kGuided, 11, {}, guidance);

  // Guided injects no delays: ordering pressure comes from picks alone.
  YieldContext y;
  y.kind = HookKind::kMpiCall;
  y.site = "hidden.pick";
  y.in_parallel = true;
  EXPECT_EQ(s->on_yield(y), 0u);

  // A flagged two-way site always takes the non-default alternative; the
  // baseline run already covered arrival order.
  PickContext flagged;
  flagged.kind = HookKind::kWildcardPick;
  flagged.site = "hidden.pick";
  flagged.n_eligible = 2;
  EXPECT_EQ(s->on_pick(flagged), 1u);

  // A site the static analysis never flagged keeps the default.
  PickContext unflagged = flagged;
  unflagged.site = "mailbox.unflagged";
  EXPECT_EQ(s->on_pick(unflagged), 0u);

  // Deterministic in the seed, and two-way picks are seed-independent —
  // the invariant the Sweeper's fingerprint pruning rests on.
  for (const std::uint64_t seed : {11u, 12u, 99u}) {
    const auto again = make_strategy(StrategyKind::kGuided, seed, {}, guidance);
    EXPECT_EQ(again->on_pick(flagged), 1u) << "seed " << seed;
  }
}

TEST(Sweep, GuidedFindsHiddenOnFirstScheduleAndPrunesTheRest) {
  // Both of the hidden app's pick sites are two-way, so every guided seed
  // makes the same (flipped) picks: schedule 0 reaches V3 and all later
  // seeds share its fingerprint and are pruned without running.
  SweepConfig cfg = hidden_config(StrategyKind::kGuided, 8);
  cfg.guidance = hidden_guidance();
  const SweepResult result = Sweeper(cfg).run(hidden_main());

  const SweepFinding* hidden = nullptr;
  for (const SweepFinding& f : result.findings) {
    if (f.key == kHiddenKey) hidden = &f;
  }
  ASSERT_NE(hidden, nullptr) << result.to_string();
  EXPECT_EQ(hidden->schedule_index, 0);
  EXPECT_EQ(result.first_new_schedule, 0);
  EXPECT_EQ(result.schedules_run, 2) << "baseline + schedule 0 only";
  ASSERT_EQ(result.pruned.size(), 7u) << result.to_string();
  for (const PrunedSchedule& p : result.pruned) {
    EXPECT_NE(p.reason.find("fingerprint"), std::string::npos) << p.reason;
  }
  // Pruned schedules still pad the coverage curve: baseline + 8 schedules.
  EXPECT_EQ(result.coverage_curve.size(), 9u);

  // The finding replays like any other schedule's.
  Sweeper sweeper(cfg);
  EXPECT_EQ(sweeper.replay(hidden->schedule, hidden_main()).count(kHiddenKey),
            1u);
}

}  // namespace
}  // namespace home::explore
