// Property-style parameterized suites (TEST_P sweeps over random seeds):
//  * randomized *legal* hybrid programs never produce violations (no false
//    positives from the full pipeline),
//  * randomized programs with one planted violation class are always caught,
//  * the mailbox preserves per-(source, tag) FIFO order under random
//    interleavings,
//  * Eraser never reports consistently locked traces,
//  * barrier-separated accesses are never concurrent under HB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/detect/happens_before.hpp"
#include "src/detect/lockset.hpp"
#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/sync.hpp"
#include "src/homp/worksharing.hpp"
#include "src/simmpi/mailbox.hpp"
#include "src/util/rng.hpp"

namespace home {
namespace {

using namespace simmpi;
using spec::ViolationType;

// ------------------------------------------------- randomized legal programs

class LegalProgramProperty : public ::testing::TestWithParam<int> {};

TEST_P(LegalProgramProperty, NoFalsePositives) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  CheckConfig cfg;
  cfg.nranks = 2;
  auto result = check_program(cfg, [seed](Process& p) {
    util::Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(p.rank()));
    p.init_thread(ThreadLevel::kMultiple);
    const int rounds = 2 + static_cast<int>(seed % 3);
    for (int round = 0; round < rounds; ++round) {
      homp::parallel(2, [&] {
        const int tnum = homp::thread_num();
        const int peer = 1 - p.rank();
        // Legal pattern 1: per-thread tags.
        const int tag = 100 * round + tnum;
        int v = tnum;
        p.send(&v, 1, Datatype::kInt, peer, tag, kCommWorld, {"legal.send"});
        p.recv(&v, 1, Datatype::kInt, peer, tag, kCommWorld, nullptr,
               {"legal.recv"});
        // Legal pattern 2: shared tag but serialized by a critical section.
        homp::critical("legal", [&] {
          int w = tnum;
          p.send(&w, 1, Datatype::kInt, peer, 999, kCommWorld,
                 {"legal.crit.send"});
          p.recv(&w, 1, Datatype::kInt, peer, 999, kCommWorld, nullptr,
                 {"legal.crit.recv"});
        });
        // Legal pattern 3: master-funneled collective.
        homp::master([&] {
          double x = 1.0, y = 0.0;
          p.allreduce(&x, &y, 1, Datatype::kDouble, ReduceOp::kSum, kCommWorld,
                      {"legal.allreduce"});
        });
        homp::barrier();
      });
    }
    p.finalize();
  });
  EXPECT_TRUE(result.run.ok()) << (result.run.errors.empty()
                                       ? ""
                                       : result.run.errors[0]);
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalProgramProperty, ::testing::Range(0, 8));

// --------------------------------------------- randomized planted violations

class PlantedViolationProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlantedViolationProperty, AlwaysDetected) {
  const int seed = GetParam();
  const auto planted = static_cast<ViolationType>(seed % 6);
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.block_timeout_ms = 1000;
  auto result = check_program(cfg, [planted](Process& p) {
    const int peer = 1 - p.rank();
    if (planted == ViolationType::kInitialization) {
      p.init_thread(ThreadLevel::kFunneled);
    } else {
      p.init_thread(ThreadLevel::kMultiple);
    }
    switch (planted) {
      case ViolationType::kInitialization:
        homp::parallel(2, [&] {
          if (homp::thread_num() == 1) {
            int x = 0, y = 0;
            p.allreduce(&x, &y, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld);
          }
        });
        break;
      case ViolationType::kFinalization:
        homp::parallel(2, [&] {
          if (homp::thread_num() == 1) p.finalize();
        });
        break;
      case ViolationType::kConcurrentRecv:
        homp::parallel(2, [&] {
          int v = 0;
          if (p.rank() == 0) {
            p.send(&v, 1, Datatype::kInt, peer, 7, kCommWorld);
          } else {
            p.recv(&v, 1, Datatype::kInt, peer, 7, kCommWorld);
          }
        });
        break;
      case ViolationType::kConcurrentRequest:
        if (p.rank() == 0) {
          static thread_local int buf;
          Request shared = p.irecv(&buf, 1, Datatype::kInt, 1, 0, kCommWorld);
          homp::parallel(2, [&] { p.wait(shared); });
        } else {
          const int v = 1;
          p.send(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
        }
        break;
      case ViolationType::kProbe:
        if (p.rank() == 0) {
          for (int i = 0; i < 2; ++i) {
            const int v = i;
            p.send(&v, 1, Datatype::kInt, 1, 9, kCommWorld);
          }
        } else {
          homp::parallel(2, [&] {
            int v;
            if (homp::thread_num() == 0) {
              Status st;
              p.probe(0, 9, kCommWorld, &st);
              p.recv(&v, 1, Datatype::kInt, 0, 9, kCommWorld);
            } else {
              p.recv(&v, 1, Datatype::kInt, 0, 9, kCommWorld);
            }
          });
        }
        break;
      case ViolationType::kCollectiveCall:
        homp::parallel(2, [&] { p.barrier(kCommWorld); });
        break;
    }
    if (!p.finalized()) p.finalize();
  });
  EXPECT_TRUE(result.report.has(planted))
      << "planted " << spec::violation_type_name(planted) << "\n"
      << result.report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllClassesTwice, PlantedViolationProperty,
                         ::testing::Range(0, 12));

// --------------------------------------------------------- mailbox ordering

class MailboxFifoProperty : public ::testing::TestWithParam<int> {};

TEST_P(MailboxFifoProperty, PerTagOrderPreserved) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  Mailbox mailbox;

  // Deliver 40 messages with random tags in {0,1,2}; payload = sequence
  // number within its tag class.
  int next_per_tag[3] = {0, 0, 0};
  for (int i = 0; i < 40; ++i) {
    const int tag = rng.next_int(0, 2);
    Envelope msg;
    msg.src = 0;
    msg.tag = tag;
    msg.comm = 1;
    msg.dt = Datatype::kInt;
    msg.count = 1;
    msg.msg_id = next_message_id();
    msg.payload.resize(sizeof(int));
    const int value = next_per_tag[tag]++;
    std::memcpy(msg.payload.data(), &value, sizeof(int));
    mailbox.deliver(std::move(msg));
  }

  // Receive everything tag by tag (random tag choice each step): each tag
  // class must come out in FIFO order.
  int seen_per_tag[3] = {0, 0, 0};
  for (int i = 0; i < 40; ++i) {
    int tag = rng.next_int(0, 2);
    while (seen_per_tag[tag] >= next_per_tag[tag]) tag = (tag + 1) % 3;
    int value = -1;
    auto recv = std::make_shared<RequestState>(RequestKind::kRecv,
                                               next_request_id());
    recv->match_src = kAnySource;
    recv->match_tag = tag;
    recv->match_comm = 1;
    recv->buf = &value;
    recv->count = 1;
    recv->dt = Datatype::kInt;
    mailbox.post_recv(recv);
    ASSERT_TRUE(recv->done());
    EXPECT_EQ(value, seen_per_tag[tag]++) << "tag " << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MailboxFifoProperty, ::testing::Range(0, 10));

// -------------------------------------------- schedule-independent detection

class ScheduleJitterProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleJitterProperty, HomeDetectionStableAcrossInterleavings) {
  // The paper's core claim vs. Marmot: HOME's lockset+HB analysis reports
  // *potential* violations, so its verdict must not depend on the observed
  // interleaving.  Fuzz the schedule with per-thread jitter and require all
  // six injected classes every time.
  apps::AppConfig cfg = apps::paper_config(apps::AppKind::kBT, 2);
  cfg.jitter_ms_max = 4;
  cfg.jitter_seed = static_cast<std::uint64_t>(GetParam()) + 1;
  const auto result = apps::run_with_tool(apps::Tool::kHome, cfg);
  EXPECT_EQ(apps::count_accuracy(result.report).detected_classes, 6)
      << result.report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleJitterProperty, ::testing::Range(0, 5));

// ----------------------------------------------------- Eraser & HB invariants

class LockedTraceProperty : public ::testing::TestWithParam<int> {};

TEST_P(LockedTraceProperty, ConsistentLockingNeverReports) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  detect::EraserStateMachine machine;
  for (int i = 0; i < 500; ++i) {
    trace::Event e;
    e.seq = static_cast<trace::Seq>(i + 1);
    e.tid = static_cast<trace::Tid>(rng.next_below(6));
    e.kind = rng.next_bool(0.6) ? trace::EventKind::kMemWrite
                                : trace::EventKind::kMemRead;
    e.obj = 50 + rng.next_below(8);
    // Every access holds the variable's own lock (consistent discipline),
    // possibly plus extra unrelated locks.
    e.locks_held = {1000 + e.obj};
    if (rng.next_bool(0.3)) e.locks_held.push_back(2000 + rng.next_below(4));
    std::sort(e.locks_held.begin(), e.locks_held.end());
    EXPECT_FALSE(machine.on_access(e));
  }
  EXPECT_TRUE(machine.reported_variables().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockedTraceProperty, ::testing::Range(0, 8));

class BarrierPhaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(BarrierPhaseProperty, CrossPhaseAccessesAreOrdered) {
  // Random trace: T threads, P phases separated by full barriers; accesses
  // in different phases must be HB-ordered, accesses in the same phase by
  // different threads must be concurrent.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 7);
  const int threads = 2 + static_cast<int>(rng.next_below(3));
  const int phases = 2 + static_cast<int>(rng.next_below(3));

  std::vector<trace::Event> events;
  trace::Seq seq = 1;
  std::vector<std::pair<std::size_t, int>> access_phase;  // (index, phase).
  for (int phase = 0; phase < phases; ++phase) {
    for (int t = 0; t < threads; ++t) {
      const int naccess = 1 + static_cast<int>(rng.next_below(3));
      for (int a = 0; a < naccess; ++a) {
        trace::Event e;
        e.seq = seq++;
        e.tid = t;
        e.kind = trace::EventKind::kMemWrite;
        e.obj = 5;
        access_phase.push_back({events.size(), phase});
        events.push_back(std::move(e));
      }
    }
    for (int t = 0; t < threads; ++t) {
      trace::Event e;
      e.seq = seq++;
      e.tid = t;
      e.kind = trace::EventKind::kBarrier;
      e.obj = static_cast<trace::ObjId>(1000 + phase);
      e.aux = static_cast<std::uint64_t>(threads);
      events.push_back(std::move(e));
    }
  }

  detect::HbIndex hb = detect::HappensBeforeAnalysis().run(events);
  for (const auto& [i, phase_i] : access_phase) {
    for (const auto& [j, phase_j] : access_phase) {
      if (i >= j) continue;
      const auto& ei = hb.events()[i];
      const auto& ej = hb.events()[j];
      if (phase_i != phase_j) {
        EXPECT_TRUE(hb.ordered(i, j))
            << "cross-phase accesses must be ordered (phases " << phase_i
            << " vs " << phase_j << ")";
      } else if (ei.tid != ej.tid) {
        EXPECT_TRUE(hb.concurrent(i, j))
            << "same-phase accesses of different threads must be concurrent";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierPhaseProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace home
