// Tests for the NPB-MZ-style mini-apps, the fault injector, and the
// tool-comparison harness — including the paper's Section V.B accuracy
// matrix at small scale.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/spec/violations.hpp"

namespace home::apps {
namespace {

using spec::ViolationType;

// ---------------------------------------------------------------------- zones

TEST(Zone, ResidualOfConstantField) {
  Zone zone(4, 2.0);
  EXPECT_DOUBLE_EQ(zone.residual(), 16 * 4.0);
}

TEST(Zone, EdgesAndHalos) {
  Zone zone(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) zone.at(i, j) = i * 10.0 + j;
  }
  const auto east = zone.east_edge();
  ASSERT_EQ(east.size(), 3u);
  EXPECT_DOUBLE_EQ(east[1], 12.0);
  zone.set_west_halo({7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(zone.at(2, -1), 9.0);
}

TEST(Kernels, SweepsChangeTheField) {
  for (AppKind kind : {AppKind::kLU, AppKind::kBT, AppKind::kSP}) {
    Zone zone(8, 1.0);
    const double before = zone.residual();
    sweep_zone(kind, zone);
    EXPECT_NE(zone.residual(), before) << app_kind_name(kind);
  }
}

TEST(Kernels, SweepsAreDeterministic) {
  Zone a(6, 1.5), b(6, 1.5);
  ssor_sweep(a);
  ssor_sweep(b);
  EXPECT_DOUBLE_EQ(a.residual(), b.residual());
}

// ------------------------------------------------------------------ app runs

TEST(App, CleanRunSucceedsOnAllKinds) {
  for (AppKind kind : {AppKind::kLU, AppKind::kBT, AppKind::kSP}) {
    AppConfig cfg = clean_config(kind, 2);
    cfg.iterations = 2;
    auto result = run_with_tool(Tool::kBase, cfg);
    EXPECT_TRUE(result.run.ok())
        << app_kind_name(kind) << ": " << (result.run.errors.empty()
                                               ? ""
                                               : result.run.errors[0]);
  }
}

TEST(App, CleanRunIsViolationFreeUnderHome) {
  AppConfig cfg = clean_config(AppKind::kLU, 2);
  cfg.iterations = 2;
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

TEST(App, CleanRunIsViolationFreeUnderMarmot) {
  AppConfig cfg = clean_config(AppKind::kSP, 2);
  cfg.iterations = 2;
  auto result = run_with_tool(Tool::kMarmot, cfg);
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

TEST(App, CleanRunIsViolationFreeUnderItc) {
  AppConfig cfg = clean_config(AppKind::kBT, 2);
  cfg.iterations = 2;
  auto result = run_with_tool(Tool::kItc, cfg);
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
  EXPECT_GT(result.report.stats().trace_events, 0u);
}

TEST(App, FourRankRingRuns) {
  AppConfig cfg = clean_config(AppKind::kSP, 4);
  cfg.iterations = 2;
  auto result = run_with_tool(Tool::kBase, cfg);
  EXPECT_TRUE(result.run.ok());
}

// ------------------------------------------------------- injected violations

TEST(Injection, HomeDetectsAllSixOnEveryApp) {
  for (AppKind kind : {AppKind::kLU, AppKind::kBT, AppKind::kSP}) {
    AppConfig cfg = paper_config(kind, 2);
    auto result = run_with_tool(Tool::kHome, cfg);
    const AccuracyCount acc = count_accuracy(result.report);
    EXPECT_EQ(acc.detected_classes, 6)
        << app_kind_name(kind) << "\n" << result.report.to_string();
    EXPECT_EQ(acc.extra_reports, 0) << app_kind_name(kind);
  }
}

TEST(Injection, AccuracyMatrixMatchesPaperTable) {
  // Paper Section V.B: rows LU/BT/SP, columns HOME/ITC/Marmot = 6/5/5,
  // 6/7/6, 6/6/5.
  struct Row {
    AppKind kind;
    int home;
    int itc;
    int marmot;
  };
  const Row rows[] = {
      {AppKind::kLU, 6, 5, 5},
      {AppKind::kBT, 6, 7, 6},
      {AppKind::kSP, 6, 6, 5},
  };
  for (const Row& row : rows) {
    AppConfig cfg = paper_config(row.kind, 2);
    const auto home = run_with_tool(Tool::kHome, cfg).report;
    EXPECT_EQ(count_accuracy(home).table_value(), row.home)
        << app_kind_name(row.kind) << " HOME\n" << home.to_string();
    const auto itc = run_with_tool(Tool::kItc, cfg).report;
    EXPECT_EQ(count_accuracy(itc).table_value(), row.itc)
        << app_kind_name(row.kind) << " ITC\n" << itc.to_string();
    const auto marmot = run_with_tool(Tool::kMarmot, cfg).report;
    EXPECT_EQ(count_accuracy(marmot).table_value(), row.marmot)
        << app_kind_name(row.kind) << " MARMOT\n" << marmot.to_string();
  }
}

TEST(Injection, ItcMissesBlockingProbeOnLu) {
  AppConfig cfg = paper_config(AppKind::kLU, 2);
  auto result = run_with_tool(Tool::kItc, cfg);
  EXPECT_FALSE(result.report.has(ViolationType::kProbe))
      << result.report.to_string();
}

TEST(Injection, ItcFalsePositiveOnBaitIsCollectiveClass) {
  AppConfig cfg = paper_config(AppKind::kBT, 2);
  auto result = run_with_tool(Tool::kItc, cfg);
  bool bait_report = false;
  for (const auto& v : result.report.violations()) {
    if (v.callsite1.find("bait.") != std::string::npos ||
        v.callsite2.find("bait.") != std::string::npos) {
      bait_report = true;
      EXPECT_EQ(v.type, ViolationType::kCollectiveCall);
    }
  }
  EXPECT_TRUE(bait_report);
}

TEST(Injection, MarmotMissesLatentConcurrentRecvOnSp) {
  AppConfig cfg = paper_config(AppKind::kSP, 2);
  auto result = run_with_tool(Tool::kMarmot, cfg);
  EXPECT_FALSE(result.report.has(ViolationType::kConcurrentRecv))
      << result.report.to_string();
}

TEST(Injection, HomeCatchesLatentConcurrentRecvOnSp) {
  AppConfig cfg = paper_config(AppKind::kSP, 2);
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_TRUE(result.report.has(ViolationType::kConcurrentRecv));
}

TEST(Injection, FourRanksStillDetectEverything) {
  AppConfig cfg = paper_config(AppKind::kBT, 4);
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_EQ(count_accuracy(result.report).detected_classes, 6)
      << result.report.to_string();
}

TEST(Injection, EightRankScaleStillDetectsEverything) {
  AppConfig cfg = paper_config(AppKind::kSP, 8);
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_EQ(count_accuracy(result.report).detected_classes, 6)
      << result.report.to_string();
}

TEST(App, ManyIterationsStayViolationFree) {
  // No false-positive accumulation over a longer clean run: repeated
  // same-callsite calls across iterations must stay HB-ordered via the
  // region fork/join edges.
  AppConfig cfg = clean_config(AppKind::kLU, 2);
  cfg.iterations = 12;
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_TRUE(result.run.ok());
  EXPECT_TRUE(result.report.clean()) << result.report.to_string();
}

// ------------------------------------------------------------------- toolrun

TEST(ToolRun, NamesAreStable) {
  EXPECT_STREQ(tool_name(Tool::kBase), "Base");
  EXPECT_STREQ(tool_name(Tool::kHome), "HOME");
  EXPECT_STREQ(tool_name(Tool::kMarmot), "MARMOT");
  EXPECT_STREQ(tool_name(Tool::kItc), "ITC");
}

TEST(ToolRun, TimingsArePopulated) {
  AppConfig cfg = clean_config(AppKind::kLU, 2);
  cfg.iterations = 2;
  auto result = run_with_tool(Tool::kHome, cfg);
  EXPECT_GT(result.run_seconds, 0.0);
}

}  // namespace
}  // namespace home::apps
