// Fault-injection engine tests (ISSUE-10 tentpole): spec/plan round trips,
// splitmix64 determinism, replay fidelity, crash capping, drop-with-
// redelivery, disabled-gate behavior, and end-to-end Session integration.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>

#include "src/faults/injector.hpp"
#include "src/faults/plan.hpp"
#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"

namespace home {
namespace {

using namespace simmpi;

TEST(FaultSpec, RoundTripsText) {
  faults::FaultSpec spec;
  spec.msg_delay_p = 0.25;
  spec.msg_drop_p = 0.1;
  spec.rank_stall_p = 0.5;
  spec.rank_crash_p = 0.01;
  spec.lock_pause_p = 0.125;
  spec.queue_pressure_p = 0.0625;
  spec.max_delay_us = 1234;
  spec.redeliver_delay_us = 777;
  spec.max_crashes = 2;

  faults::FaultSpec parsed;
  ASSERT_TRUE(faults::FaultSpec::parse(spec.to_string(), &parsed));
  EXPECT_DOUBLE_EQ(parsed.msg_delay_p, spec.msg_delay_p);
  EXPECT_DOUBLE_EQ(parsed.rank_crash_p, spec.rank_crash_p);
  EXPECT_EQ(parsed.max_delay_us, spec.max_delay_us);
  EXPECT_EQ(parsed.redeliver_delay_us, spec.redeliver_delay_us);
  EXPECT_EQ(parsed.max_crashes, spec.max_crashes);
}

TEST(FaultSpec, ParseRejectsUnknownKey) {
  faults::FaultSpec spec;
  EXPECT_FALSE(faults::FaultSpec::parse("frobnicate=1", &spec));
  EXPECT_TRUE(faults::FaultSpec::parse("crash=0.5,delay=0.25", &spec));
  EXPECT_DOUBLE_EQ(spec.rank_crash_p, 0.5);
  EXPECT_DOUBLE_EQ(spec.msg_delay_p, 0.25);
}

TEST(FaultPlan, FileRoundTrip) {
  faults::FaultPlan plan;
  plan.seed = 42;
  plan.spec.rank_stall_p = 0.5;
  faults::FaultDecision d;
  d.kind = faults::FaultKind::kMsgDelay;
  d.rank = 1;
  d.site = "p2p.send";
  d.occurrence = 3;
  d.value = 1500;
  plan.decisions.push_back(d);
  d.kind = faults::FaultKind::kRankCrash;
  d.rank = 0;
  d.site = "app.init";
  d.occurrence = 0;
  d.value = 0;
  plan.decisions.push_back(d);

  const std::string path = testing::TempDir() + "/home_faults_plan_test.txt";
  ASSERT_TRUE(plan.save(path));
  faults::FaultPlan loaded;
  ASSERT_TRUE(faults::FaultPlan::load(path, &loaded));
  EXPECT_EQ(loaded.seed, plan.seed);
  ASSERT_EQ(loaded.decisions.size(), 2u);
  EXPECT_EQ(loaded.decisions[0].kind, faults::FaultKind::kMsgDelay);
  EXPECT_EQ(loaded.decisions[0].site, "p2p.send");
  EXPECT_EQ(loaded.decisions[0].value, 1500u);
  EXPECT_EQ(loaded.decisions[1].kind, faults::FaultKind::kRankCrash);
  EXPECT_EQ(loaded.to_string(), plan.to_string());
  std::remove(path.c_str());
}

TEST(FaultPlan, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/home_faults_bad_plan.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("garbage\n", f);
    std::fclose(f);
  }
  faults::FaultPlan loaded;
  EXPECT_FALSE(faults::FaultPlan::load(path, &loaded));
  std::remove(path.c_str());
}

/// Drive a fixed synthetic hook sequence through an injector and return the
/// recorded plan text.
std::string drive_sequence(faults::Injector& inj) {
  for (int i = 0; i < 40; ++i) {
    try {
      inj.on_mpi_call(i % 2, "t.call");
    } catch (const faults::RankCrashError&) {
      // Capped crash; keep driving.
    }
    inj.on_message(i % 2, "t.msg", [] {});
    inj.on_lock_acquired(i % 2, "t.lock");
    inj.on_queue_consume("t.queue");
  }
  inj.quiesce();
  return inj.plan().to_string();
}

TEST(Injector, DeterministicForSeed) {
  faults::FaultSpec spec;
  spec.msg_delay_p = 0.5;
  spec.rank_stall_p = 0.5;
  spec.lock_pause_p = 0.5;
  spec.queue_pressure_p = 0.5;
  spec.max_delay_us = 50;  // keep the test fast.

  faults::Injector a(spec, 7);
  faults::Injector b(spec, 7);
  faults::Injector c(spec, 8);
  const std::string plan_a = drive_sequence(a);
  const std::string plan_b = drive_sequence(b);
  const std::string plan_c = drive_sequence(c);
  EXPECT_EQ(plan_a, plan_b);
  EXPECT_NE(plan_a, plan_c);  // splitmix64(seed^...) must move with the seed.
  EXPECT_GT(a.injected_count(), 0u);
}

TEST(Injector, ReplayAppliesExactlyTheRecordedPlan) {
  faults::FaultSpec spec;
  spec.msg_delay_p = 0.5;
  spec.rank_stall_p = 0.5;
  spec.max_delay_us = 50;

  faults::Injector gen(spec, 11);
  const std::string recorded = drive_sequence(gen);
  ASSERT_GT(gen.injected_count(), 0u);

  faults::Injector rep(gen.plan());
  EXPECT_TRUE(rep.replay_mode());
  const std::string replayed = drive_sequence(rep);
  EXPECT_EQ(replayed, recorded);
  EXPECT_EQ(rep.injected_count(), gen.injected_count());
}

TEST(Injector, CrashCapHonored) {
  faults::FaultSpec spec;
  spec.rank_crash_p = 1.0;
  spec.max_crashes = 1;
  faults::Injector inj(spec, 1);

  EXPECT_THROW(inj.on_mpi_call(0, "t.first"), faults::RankCrashError);
  // The cap is per run: the second call must not crash.
  EXPECT_NO_THROW(inj.on_mpi_call(0, "t.second"));
  EXPECT_NO_THROW(inj.on_mpi_call(1, "t.third"));
}

TEST(Injector, DroppedMessageIsEventuallyRedelivered) {
  faults::FaultSpec spec;
  spec.msg_drop_p = 1.0;
  spec.redeliver_delay_us = 200;
  faults::Injector inj(spec, 3);

  std::atomic<bool> delivered{false};
  const bool taken = inj.on_message(0, "t.drop", [&] { delivered = true; });
  EXPECT_TRUE(taken);  // injector owns the delivery now.
  inj.quiesce();       // forces any still-parked delivery out immediately.
  EXPECT_TRUE(delivered.load());
  ASSERT_EQ(inj.plan().decisions.size(), 1u);
  EXPECT_EQ(inj.plan().decisions[0].kind, faults::FaultKind::kMsgDrop);
}

TEST(Injector, HooksAreNoOpsWhenNothingInstalled) {
  ASSERT_FALSE(faults::active());
  EXPECT_NO_THROW(faults::mpi_call_point(0, "t.site"));
  EXPECT_NO_THROW(faults::lock_holder_point(0, "t.site"));
  EXPECT_NO_THROW(faults::queue_consume_point("t.site"));
  bool delivered = false;
  EXPECT_FALSE(faults::message_point(0, "t.site", [&] { delivered = true; }));
  EXPECT_FALSE(delivered);  // caller keeps the delivery.
}

TEST(Injector, InstallUninstallGatesTheHooks) {
  faults::FaultSpec spec;
  spec.rank_stall_p = 1.0;
  spec.max_delay_us = 10;
  faults::Injector inj(spec, 5);
  faults::install(&inj);
  EXPECT_TRUE(faults::active());
  faults::mpi_call_point(0, "t.site");
  EXPECT_GT(inj.injected_count(), 0u);
  faults::uninstall();
  EXPECT_FALSE(faults::active());
}

TEST(FaultsSession, RecordsAPlanAndStaysAnalyzable) {
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.session.faults.enabled = true;
  cfg.session.faults.seed = 9;
  cfg.session.faults.spec.rank_stall_p = 0.5;
  cfg.session.faults.spec.lock_pause_p = 0.5;
  cfg.session.faults.spec.msg_delay_p = 0.5;
  cfg.session.faults.spec.max_delay_us = 100;

  Session session(cfg.session);
  UniverseConfig ucfg;
  ucfg.nranks = cfg.nranks;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  homp::set_default_threads(2);
  const RunResult run = universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = 0;
      const int peer = 1 - p.rank();
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"ft.send"});
      } else {
        p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr,
               {"ft.recv"});
      }
    });
    p.finalize();
  });
  session.detach(universe);

  EXPECT_TRUE(run.ok()) << "stalls/delays must not break the run";
  const faults::FaultPlan plan = session.recorded_fault_plan();
  EXPECT_FALSE(plan.empty()) << "p=0.5 over a full run must fire something";
  // The faulted run is still a valid detection run.
  const Report report = session.analyze();
  EXPECT_TRUE(report.has(spec::ViolationType::kConcurrentRecv));
}

TEST(FaultsSession, InjectedCrashTakesDownOneRankNotTheRun) {
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.session.faults.enabled = true;
  cfg.session.faults.seed = 2;
  cfg.session.faults.spec.rank_crash_p = 1.0;
  cfg.session.faults.spec.max_crashes = 1;

  // No cross-rank communication: the surviving rank must finish normally.
  const CheckResult result = check_program(cfg, [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [] {});
    p.finalize();
  });
  EXPECT_EQ(result.run.failed_ranks.size(), 1u);
  ASSERT_EQ(result.run.errors.size(), 1u);
  EXPECT_NE(result.run.errors[0].find("injected rank crash"),
            std::string::npos);
}

/// Decision multiset key — recording *order* across ranks is interleaving-
/// dependent, but the decision set for a fixed control flow is not.
std::multiset<std::string> decision_set(const faults::FaultPlan& plan) {
  std::multiset<std::string> out;
  for (const faults::FaultDecision& d : plan.decisions) {
    out.insert(std::string(faults::fault_kind_name(d.kind)) + "|" +
               std::to_string(d.rank) + "|" + d.site + "#" +
               std::to_string(d.occurrence) + "=" + std::to_string(d.value));
  }
  return out;
}

TEST(FaultsSession, ReplayReproducesTheGeneratedRunsPlan) {
  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.session.faults.enabled = true;
  cfg.session.faults.seed = 4;
  cfg.session.faults.spec.rank_stall_p = 0.5;
  cfg.session.faults.spec.max_delay_us = 50;

  auto rank_main = [](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    for (int i = 0; i < 4; ++i) {
      int a = 0;
      const int peer = 1 - p.rank();
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"fr.send"});
      } else {
        p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr,
               {"fr.recv"});
      }
    }
    p.finalize();
  };

  faults::FaultPlan recorded;
  {
    Session session(cfg.session);
    UniverseConfig ucfg;
    ucfg.nranks = cfg.nranks;
    session.configure(ucfg);
    Universe universe(ucfg);
    session.attach(universe);
    homp::set_default_threads(2);
    universe.run(rank_main);
    session.detach(universe);
    recorded = session.recorded_fault_plan();
  }
  ASSERT_FALSE(recorded.empty());

  SessionConfig replay_cfg = cfg.session;
  replay_cfg.faults.replay = std::make_shared<faults::FaultPlan>(recorded);
  Session session(replay_cfg);
  UniverseConfig ucfg;
  ucfg.nranks = cfg.nranks;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  homp::set_default_threads(2);
  universe.run(rank_main);
  session.detach(universe);
  EXPECT_EQ(decision_set(session.recorded_fault_plan()),
            decision_set(recorded));
}

}  // namespace
}  // namespace home
