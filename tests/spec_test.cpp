// Unit tests of the thread-safety specification layer: monitored-variable
// encoding, the wrapper write-sets, and the matcher evaluated on synthetic
// wrapper-shaped traces (no universe involved).
#include <gtest/gtest.h>

#include "src/detect/race_detector.hpp"
#include "src/simmpi/types.hpp"
#include "src/spec/matcher.hpp"
#include "src/spec/monitored.hpp"
#include "src/spec/violations.hpp"
#include "src/trace/trace_log.hpp"

namespace home::spec {
namespace {

using trace::EventKind;
using trace::MpiCallType;

// Builds traces shaped exactly like HomeWrappers' output.
class TraceBuilder {
 public:
  struct CallSpec {
    MpiCallType type = MpiCallType::kRecv;
    int rank = 0;
    trace::Tid tid = 0;
    int peer = -1;
    int tag = -1;
    std::uint64_t comm = 1;
    std::uint64_t request = 0;
    bool on_main = false;
    std::uint8_t provided = 3;  // MPI_THREAD_MULTIPLE by default.
    std::vector<trace::ObjId> locks;
    const char* site = nullptr;
  };

  void call(const CallSpec& spec) {
    trace::MpiCallInfo info;
    info.type = spec.type;
    info.peer = spec.peer;
    info.tag = spec.tag;
    info.comm = spec.comm;
    info.request = spec.request;
    info.on_main_thread = spec.on_main;
    info.provided = spec.provided;
    if (spec.site) info.callsite = log_.strings().intern(spec.site);

    trace::Event call;
    call.tid = spec.tid;
    call.rank = spec.rank;
    call.kind = EventKind::kMpiCall;
    call.locks_held = spec.locks;
    call.mpi = info;
    const trace::Seq seq = log_.emit(std::move(call));

    for (MonitoredVar var : monitored_vars_for(spec.type)) {
      trace::Event write;
      write.tid = spec.tid;
      write.rank = spec.rank;
      write.kind = EventKind::kMemWrite;
      write.obj = monitored_var_id(spec.rank, var);
      write.aux = seq;
      write.locks_held = spec.locks;
      log_.emit(std::move(write));
    }
  }

  void barrier(std::initializer_list<trace::Tid> tids, trace::ObjId id) {
    for (trace::Tid tid : tids) {
      trace::Event e;
      e.tid = tid;
      e.kind = EventKind::kBarrier;
      e.obj = id;
      e.aux = tids.size();
      log_.emit(std::move(e));
    }
  }

  void region_begin(int rank, trace::Tid tid, int team = 2) {
    trace::Event e;
    e.tid = tid;
    e.rank = rank;
    e.kind = EventKind::kRegionBegin;
    e.obj = 1;
    e.aux = static_cast<std::uint64_t>(team);
    log_.emit(std::move(e));
  }

  std::vector<Violation> match() {
    detect::RaceDetector detector;
    auto report = detector.analyze(log_.sorted_events());
    Matcher matcher(&log_.strings());
    return matcher.match(report);
  }

  trace::TraceLog log_;
};

bool has_type(const std::vector<Violation>& violations, ViolationType type) {
  for (const auto& v : violations) {
    if (v.type == type) return true;
  }
  return false;
}

// ------------------------------------------------------ monitored variables

TEST(Monitored, IdEncodingRoundTrips) {
  for (int rank : {0, 1, 7, 63}) {
    for (int k = 0; k < kMonitoredVarCount; ++k) {
      const auto var = static_cast<MonitoredVar>(k);
      const trace::ObjId id = monitored_var_id(rank, var);
      EXPECT_TRUE(is_monitored_var(id));
      EXPECT_EQ(monitored_var_rank(id), rank);
      EXPECT_EQ(monitored_var_kind(id), var);
    }
  }
}

TEST(Monitored, NonMonitoredIdsRejected) {
  EXPECT_FALSE(is_monitored_var(0));
  EXPECT_FALSE(is_monitored_var(0x1000));  // lock id range.
}

TEST(Monitored, WriteSetsMatchWrapperListings) {
  using V = MonitoredVar;
  auto vars = monitored_vars_for(MpiCallType::kRecv);
  EXPECT_EQ(vars, (std::vector<V>{V::kSrcTmp, V::kTagTmp, V::kCommTmp}));
  vars = monitored_vars_for(MpiCallType::kWait);
  EXPECT_EQ(vars, (std::vector<V>{V::kRequestTmp}));
  vars = monitored_vars_for(MpiCallType::kBarrier);
  EXPECT_EQ(vars, (std::vector<V>{V::kCollectiveTmp, V::kCommTmp}));
  vars = monitored_vars_for(MpiCallType::kFinalize);
  EXPECT_EQ(vars, (std::vector<V>{V::kFinalizeTmp}));
  EXPECT_TRUE(monitored_vars_for(MpiCallType::kInit).empty());
}

TEST(Monitored, Names) {
  EXPECT_STREQ(monitored_var_name(MonitoredVar::kSrcTmp), "srctmp");
  EXPECT_STREQ(monitored_var_name(MonitoredVar::kFinalizeTmp), "finalizetmp");
}

// -------------------------------------------------------------- violations

TEST(Violations, NamesAndKeys) {
  EXPECT_STREQ(violation_type_name(ViolationType::kProbe), "ProbeViolation");
  Violation a;
  a.type = ViolationType::kConcurrentRecv;
  a.rank = 1;
  a.callsite1 = "x";
  a.callsite2 = "y";
  Violation b = a;
  std::swap(b.callsite1, b.callsite2);
  EXPECT_EQ(violation_key(a), violation_key(b));  // order-normalized.
}

TEST(Violations, ArgsOverlapWildcardAware) {
  EXPECT_TRUE(args_overlap(3, 3));
  EXPECT_FALSE(args_overlap(3, 4));
  EXPECT_TRUE(args_overlap(simmpi::kAnySource, 4));
  EXPECT_TRUE(args_overlap(3, simmpi::kAnyTag));
}

// ------------------------------------------------------------------ matcher

TEST(Matcher, ConcurrentRecvSameArgs) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5,
           .site = "r1"});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5,
           .site = "r2"});
  const auto violations = tb.match();
  ASSERT_TRUE(has_type(violations, ViolationType::kConcurrentRecv));
  EXPECT_EQ(violations[0].rank, 0);
}

TEST(Matcher, ConcurrentRecvDifferentTagsClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 6});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kConcurrentRecv));
}

TEST(Matcher, ConcurrentRecvWildcardOverlaps) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1,
           .peer = simmpi::kAnySource, .tag = 5});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 3, .tag = 5});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kConcurrentRecv));
}

TEST(Matcher, RecvsInDifferentRanksClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.call({.type = MpiCallType::kRecv, .rank = 1, .tid = 2, .peer = 2, .tag = 5});
  EXPECT_TRUE(tb.match().empty());
}

TEST(Matcher, RecvsOrderedByBarrierClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.barrier({1, 2}, 99);
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kConcurrentRecv));
}

TEST(Matcher, RecvsGuardedByCommonLockClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5,
           .locks = {0x1000}});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5,
           .locks = {0x1000}});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kConcurrentRecv));
}

TEST(Matcher, ConcurrentRequestSameRequest) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kWait, .rank = 0, .tid = 1, .request = 77});
  tb.call({.type = MpiCallType::kTest, .rank = 0, .tid = 2, .request = 77});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kConcurrentRequest));
}

TEST(Matcher, ConcurrentRequestDifferentRequestsClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kWait, .rank = 0, .tid = 1, .request = 77});
  tb.call({.type = MpiCallType::kWait, .rank = 0, .tid = 2, .request = 78});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kConcurrentRequest));
}

TEST(Matcher, ProbeAgainstRecv) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kProbe, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kProbe));
}

TEST(Matcher, ProbeAgainstProbe) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kIprobe, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.call({.type = MpiCallType::kProbe, .rank = 0, .tid = 2, .peer = 2, .tag = 5});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kProbe));
}

TEST(Matcher, CollectivesOnSameComm) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kBarrier, .rank = 0, .tid = 1, .comm = 9});
  tb.call({.type = MpiCallType::kAllreduce, .rank = 0, .tid = 2, .comm = 9});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kCollectiveCall));
}

TEST(Matcher, CollectivesOnDifferentCommsClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kBarrier, .rank = 0, .tid = 1, .comm = 9});
  tb.call({.type = MpiCallType::kBarrier, .rank = 0, .tid = 2, .comm = 10});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kCollectiveCall));
}

TEST(Matcher, InitializationSingleWithParallelRegion) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kInit, .rank = 0, .tid = 1, .on_main = true,
           .provided = 0});
  tb.region_begin(0, 1);
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kInitialization));
}

TEST(Matcher, InitializationSingleWithoutParallelClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kInit, .rank = 0, .tid = 1, .on_main = true,
           .provided = 0});
  EXPECT_TRUE(tb.match().empty());
}

TEST(Matcher, InitializationFunneledOffMain) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kInitThread, .rank = 0, .tid = 1,
           .on_main = true, .provided = 1});
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 2, .peer = 1, .tag = 0,
           .on_main = false, .provided = 1});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kInitialization));
}

TEST(Matcher, InitializationSerializedWithConcurrentSends) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kInitThread, .rank = 0, .tid = 1,
           .on_main = true, .provided = 2});
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 1, .peer = 1, .tag = 1,
           .provided = 2});
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 2, .peer = 1, .tag = 2,
           .provided = 2});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kInitialization));
}

TEST(Matcher, FinalizeOffMainThread) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kFinalize, .rank = 0, .tid = 2, .on_main = false});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kFinalization));
}

TEST(Matcher, FinalizeConcurrentWithSend) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kFinalize, .rank = 0, .tid = 1, .on_main = true});
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 2, .peer = 1, .tag = 0});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kFinalization));
}

TEST(Matcher, CallAfterFinalizeSameThread) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kFinalize, .rank = 0, .tid = 1, .on_main = true});
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 1, .peer = 1, .tag = 0,
           .on_main = true});
  EXPECT_TRUE(has_type(tb.match(), ViolationType::kFinalization));
}

TEST(Matcher, FinalizeAfterBarrierOrderedClean) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kSend, .rank = 0, .tid = 2, .peer = 1, .tag = 0});
  tb.barrier({1, 2}, 55);
  tb.call({.type = MpiCallType::kFinalize, .rank = 0, .tid = 1, .on_main = true});
  EXPECT_FALSE(has_type(tb.match(), ViolationType::kFinalization));
}

TEST(Matcher, DeduplicatesRepeatedPairs) {
  TraceBuilder tb;
  for (int i = 0; i < 5; ++i) {
    tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5,
             .site = "loop.recv.a"});
    tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5,
             .site = "loop.recv.b"});
  }
  const auto violations = tb.match();
  int count = 0;
  for (const auto& v : violations) {
    if (v.type == ViolationType::kConcurrentRecv) ++count;
  }
  EXPECT_EQ(count, 1);  // one report per (type, callsite pair).
}

TEST(Matcher, StatsPopulated) {
  TraceBuilder tb;
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 1, .peer = 2, .tag = 5});
  tb.call({.type = MpiCallType::kRecv, .rank = 0, .tid = 2, .peer = 2, .tag = 5});
  detect::RaceDetector detector;
  auto report = detector.analyze(tb.log_.sorted_events());
  Matcher matcher(&tb.log_.strings());
  matcher.match(report);
  EXPECT_GT(matcher.stats().concurrent_pairs, 0u);
  EXPECT_GT(matcher.stats().call_pairs, 0u);
  EXPECT_EQ(matcher.stats().violations, 1u);
}

}  // namespace
}  // namespace home::spec
