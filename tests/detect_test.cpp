#include <gtest/gtest.h>

#include <vector>

#include "src/detect/happens_before.hpp"
#include "src/detect/lockset.hpp"
#include "src/detect/race_detector.hpp"
#include "src/detect/vector_clock.hpp"
#include "src/trace/event.hpp"
#include "src/util/rng.hpp"

namespace home::detect {
namespace {

using trace::Event;
using trace::EventKind;

Event make_event(trace::Seq seq, trace::Tid tid, EventKind kind, trace::ObjId obj,
                 std::vector<trace::ObjId> locks = {}, std::uint64_t aux = 0) {
  Event e;
  e.seq = seq;
  e.tid = tid;
  e.kind = kind;
  e.obj = obj;
  e.aux = aux;
  e.locks_held = std::move(locks);
  return e;
}

// ---------------------------------------------------------------- VectorClock

TEST(VectorClock, DefaultIsBottom) {
  VectorClock a, b;
  EXPECT_TRUE(a.leq(b));
  EXPECT_TRUE(b.leq(a));
  EXPECT_FALSE(VectorClock::concurrent(a, b));
}

TEST(VectorClock, BumpAndGet) {
  VectorClock c;
  c.bump(2);
  EXPECT_EQ(c.get(2), 1u);
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(99), 0u);  // out-of-range reads as zero.
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock a, b;
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 7);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
}

TEST(VectorClock, ConcurrencyDetected) {
  VectorClock a, b;
  a.set(0, 1);
  b.set(1, 1);
  EXPECT_TRUE(VectorClock::concurrent(a, b));
  a.join(b);
  EXPECT_FALSE(VectorClock::concurrent(a, b));  // a now dominates b.
  EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, EqualityIgnoresTrailingZeroPadding) {
  // Clocks of different lengths are equal as functions Tid -> value when the
  // longer one only adds trailing zeros (a clock created before later
  // threads registered must compare equal to its padded twin).
  VectorClock a, b;
  a.set(0, 3);
  a.set(1, 5);
  b.set(0, 3);
  b.set(1, 5);
  b.set(4, 0);  // pads b to length 5 with trailing zeros.
  ASSERT_NE(a.size(), b.size());
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);

  // A non-zero component in the tail breaks equality in both orders.
  VectorClock c = a;
  c.set(4, 1);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(c == a);

  // Same length, one differing component.
  VectorClock d = a;
  d.set(1, 6);
  EXPECT_FALSE(a == d);

  // Empty vs all-zero padded.
  VectorClock empty, zeros;
  zeros.set(7, 0);
  EXPECT_TRUE(empty == zeros);
  EXPECT_TRUE(zeros == empty);
}

TEST(VectorClockProperty, EqualityMatchesTwoSidedLeq) {
  // The single-pass operator== must agree with the definitional
  // leq-both-ways on random clocks of uneven lengths.
  util::Rng rng(44);
  for (int trial = 0; trial < 500; ++trial) {
    VectorClock a, b;
    const auto na = static_cast<trace::Tid>(1 + rng.next_below(6));
    const auto nb = static_cast<trace::Tid>(1 + rng.next_below(6));
    for (trace::Tid t = 0; t < na; ++t) a.set(t, rng.next_below(3));
    for (trace::Tid t = 0; t < nb; ++t) b.set(t, rng.next_below(3));
    EXPECT_EQ(a == b, a.leq(b) && b.leq(a)) << a.to_string() << " vs "
                                            << b.to_string();
  }
}

TEST(VectorClockProperty, JoinIsLeastUpperBound) {
  util::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    VectorClock a, b;
    for (trace::Tid t = 0; t < 6; ++t) {
      a.set(t, rng.next_below(10));
      b.set(t, rng.next_below(10));
    }
    VectorClock j = a;
    j.join(b);
    EXPECT_TRUE(a.leq(j));
    EXPECT_TRUE(b.leq(j));
    // Minimality: any upper bound of both dominates the join.
    VectorClock ub;
    for (trace::Tid t = 0; t < 6; ++t) {
      ub.set(t, std::max(a.get(t), b.get(t)));
    }
    EXPECT_TRUE(j.leq(ub));
    EXPECT_TRUE(ub.leq(j));
  }
}

TEST(VectorClockProperty, LeqIsPartialOrder) {
  util::Rng rng(43);
  std::vector<VectorClock> clocks;
  for (int i = 0; i < 20; ++i) {
    VectorClock c;
    for (trace::Tid t = 0; t < 4; ++t) c.set(t, rng.next_below(5));
    clocks.push_back(c);
  }
  for (const auto& a : clocks) {
    EXPECT_TRUE(a.leq(a));  // reflexive
    for (const auto& b : clocks) {
      for (const auto& c : clocks) {
        if (a.leq(b) && b.leq(c)) {
          EXPECT_TRUE(a.leq(c));  // transitive
        }
      }
      if (a.leq(b) && b.leq(a)) {
        EXPECT_TRUE(a == b);  // antisymmetric
      }
    }
  }
}

// -------------------------------------------------------------------- Lockset

TEST(Lockset, PairwiseRaceNeedsDisjointLocks) {
  Event a = make_event(1, 0, EventKind::kMemWrite, 100, {1});
  Event b = make_event(2, 1, EventKind::kMemWrite, 100, {1});
  EXPECT_FALSE(is_potential_lockset_race(a, b));  // common lock 1.
  b.locks_held = {2};
  EXPECT_TRUE(is_potential_lockset_race(a, b));
}

TEST(Lockset, PairwiseRaceNeedsDifferentThreads) {
  Event a = make_event(1, 0, EventKind::kMemWrite, 100);
  Event b = make_event(2, 0, EventKind::kMemWrite, 100);
  EXPECT_FALSE(is_potential_lockset_race(a, b));
}

TEST(Lockset, PairwiseRaceNeedsAWrite) {
  Event a = make_event(1, 0, EventKind::kMemRead, 100);
  Event b = make_event(2, 1, EventKind::kMemRead, 100);
  EXPECT_FALSE(is_potential_lockset_race(a, b));
  b.kind = EventKind::kMemWrite;
  EXPECT_TRUE(is_potential_lockset_race(a, b));
}

TEST(Lockset, PairwiseRaceNeedsSameLocation) {
  Event a = make_event(1, 0, EventKind::kMemWrite, 100);
  Event b = make_event(2, 1, EventKind::kMemWrite, 101);
  EXPECT_FALSE(is_potential_lockset_race(a, b));
}

TEST(EraserMachine, ExclusivePhaseDoesNotReport) {
  EraserStateMachine machine;
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(machine.on_access(
        make_event(static_cast<trace::Seq>(i + 1), 0, EventKind::kMemWrite, 7)));
  }
  EXPECT_EQ(machine.variable(7).state, EraserState::kExclusive);
}

TEST(EraserMachine, SharedReadKeepsCandidates) {
  EraserStateMachine machine;
  machine.on_access(make_event(1, 0, EventKind::kMemWrite, 7, {1}));
  EXPECT_FALSE(machine.on_access(make_event(2, 1, EventKind::kMemRead, 7, {1})));
  EXPECT_EQ(machine.variable(7).state, EraserState::kShared);
  EXPECT_EQ(machine.variable(7).candidate_locks.size(), 1u);
}

TEST(EraserMachine, ReportsWhenCandidateSetEmpties) {
  EraserStateMachine machine;
  machine.on_access(make_event(1, 0, EventKind::kMemWrite, 7, {1}));
  EXPECT_FALSE(machine.on_access(make_event(2, 1, EventKind::kMemWrite, 7, {1})));
  // Thread 2 writes under a different lock: candidate set becomes empty.
  EXPECT_TRUE(machine.on_access(make_event(3, 2, EventKind::kMemWrite, 7, {2})));
  ASSERT_EQ(machine.reported_variables().size(), 1u);
  EXPECT_EQ(machine.reported_variables()[0], 7u);
  // Only one report per variable.
  EXPECT_FALSE(machine.on_access(make_event(4, 0, EventKind::kMemWrite, 7, {})));
}

TEST(EraserMachine, ConsistentLockingNeverReports) {
  EraserStateMachine machine;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(machine.on_access(make_event(static_cast<trace::Seq>(i + 1),
                                              i % 3, EventKind::kMemWrite, 9,
                                              {42})));
  }
}

// ------------------------------------------------------------- Happens-before

TEST(HappensBefore, ProgramOrderWithinThread) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.ordered(0, 1));
  EXPECT_FALSE(hb.ordered(1, 0));
}

TEST(HappensBefore, UnsynchronizedThreadsAreConcurrent) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 1, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.concurrent(0, 1));
  EXPECT_TRUE(is_potential_hb_race(hb, 0, 1));
}

TEST(HappensBefore, ForkOrdersParentBeforeChild) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kThreadFork, /*child=*/1),
      make_event(3, 1, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.ordered(0, 2));
  EXPECT_FALSE(is_potential_hb_race(hb, 0, 2));
}

TEST(HappensBefore, JoinOrdersChildBeforeParent) {
  std::vector<Event> events{
      make_event(1, 1, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kThreadJoin, /*child=*/1),
      make_event(3, 0, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.ordered(0, 2));
}

TEST(HappensBefore, BarrierSeparatesPhases) {
  // Threads 0 and 1 write before and after a 2-party barrier.
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kBarrier, 77, {}, /*aux=*/2),
      make_event(3, 1, EventKind::kBarrier, 77, {}, /*aux=*/2),
      make_event(4, 1, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.ordered(0, 3));  // pre-barrier write HB post-barrier write.
}

TEST(HappensBefore, WritesOnSameSideOfBarrierStayConcurrent) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 1, EventKind::kMemWrite, 5),
      make_event(3, 0, EventKind::kBarrier, 77, {}, 2),
      make_event(4, 1, EventKind::kBarrier, 77, {}, 2),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.concurrent(0, 1));
}

TEST(HappensBefore, MessageEdgeOrdersAcrossRanks) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kMsgSend, 900),
      make_event(3, 1, EventKind::kMsgRecv, 900),
      make_event(4, 1, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(hb.ordered(0, 3));
  HappensBeforeConfig no_msg;
  no_msg.message_edges = false;
  HbIndex hb2 = HappensBeforeAnalysis(no_msg).run(events);
  EXPECT_TRUE(hb2.concurrent(0, 3));
}

TEST(HappensBefore, LockEdgesOnlyInPureHbMode) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 5, {10}),
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kLockAcquire, 10, {10}),
      make_event(5, 1, EventKind::kMemWrite, 5, {10}),
      make_event(6, 1, EventKind::kLockRelease, 10, {10}),
  };
  HbIndex strong = HappensBeforeAnalysis().run(events);
  EXPECT_TRUE(strong.concurrent(1, 4));  // strong HB ignores lock edges.
  HappensBeforeConfig cfg;
  cfg.lock_edges = true;
  HbIndex withlocks = HappensBeforeAnalysis(cfg).run(events);
  EXPECT_TRUE(withlocks.ordered(1, 4));  // pure-HB mode orders them.
}

TEST(HappensBefore, IndexOfSeq) {
  std::vector<Event> events{
      make_event(10, 0, EventKind::kMemWrite, 5),
      make_event(20, 0, EventKind::kMemWrite, 5),
  };
  HbIndex hb = HappensBeforeAnalysis().run(events);
  EXPECT_EQ(hb.index_of_seq(10), 0u);
  EXPECT_EQ(hb.index_of_seq(20), 1u);
  EXPECT_EQ(hb.index_of_seq(15), HbIndex::npos);
}

// --------------------------------------------------------------- RaceDetector

std::vector<Event> critical_guarded_trace() {
  // Two threads write var 5 inside the same critical section (lock 10).
  return {
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 5, {10}),
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kLockAcquire, 10, {10}),
      make_event(5, 1, EventKind::kMemWrite, 5, {10}),
      make_event(6, 1, EventKind::kLockRelease, 10, {10}),
  };
}

std::vector<Event> lucky_lock_ordering_trace() {
  // Two threads write var 5; only thread 0 holds a lock. The interleaving is
  // racy regardless of observed order.
  return {
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 5, {10}),
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kMemWrite, 5, {}),
  };
}

TEST(RaceDetector, HybridIgnoresCriticalGuardedPairs) {
  RaceDetector detector({DetectorMode::kHybrid, 0});
  auto report = detector.analyze(critical_guarded_trace());
  EXPECT_FALSE(report.concurrent(5));
}

TEST(RaceDetector, LocksetOnlyAlsoIgnoresCommonLock) {
  RaceDetector detector({DetectorMode::kLocksetOnly, 0});
  auto report = detector.analyze(critical_guarded_trace());
  EXPECT_FALSE(report.concurrent(5));
}

TEST(RaceDetector, HybridCatchesUnmanifestedRace) {
  // The race did not manifest (accesses were ordered in real time), but no
  // common lock protects them and no strong HB edge orders them.
  RaceDetector detector({DetectorMode::kHybrid, 0});
  auto report = detector.analyze(lucky_lock_ordering_trace());
  EXPECT_TRUE(report.concurrent(5));
}

TEST(RaceDetector, PureHbMissesRaceHiddenByLockOrdering) {
  // With release->acquire edges, thread 1's write is *not* ordered by the
  // lock here (thread 1 takes no lock), so pure HB still reports...
  RaceDetector hb_only({DetectorMode::kHbOnly, 0});
  EXPECT_TRUE(hb_only.analyze(lucky_lock_ordering_trace()).concurrent(5));
  // ...but in a trace where both threads use the lock yet a genuine race
  // exists on an unprotected second variable, pure HB is blinded by the
  // accidental release->acquire ordering:
  std::vector<Event> trace{
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 6, {10}),  // var 6: lock held...
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kLockAcquire, 10, {10}),
      make_event(5, 1, EventKind::kLockRelease, 10, {10}),
      make_event(6, 1, EventKind::kMemWrite, 6, {}),  // ...var 6 without lock.
  };
  EXPECT_FALSE(RaceDetector({DetectorMode::kHbOnly, 0}).analyze(trace).concurrent(6));
  EXPECT_TRUE(RaceDetector({DetectorMode::kHybrid, 0}).analyze(trace).concurrent(6));
}

TEST(RaceDetector, BarrierSuppressesHybridReport) {
  std::vector<Event> events{
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kBarrier, 77, {}, 2),
      make_event(3, 1, EventKind::kBarrier, 77, {}, 2),
      make_event(4, 1, EventKind::kMemWrite, 5),
  };
  EXPECT_FALSE(RaceDetector({DetectorMode::kHybrid, 0}).analyze(events).concurrent(5));
  // Pure lockset ignores the barrier and over-reports — the paper's
  // motivation for combining the analyses.
  EXPECT_TRUE(
      RaceDetector({DetectorMode::kLocksetOnly, 0}).analyze(events).concurrent(5));
}

TEST(RaceDetector, PairCapRespected) {
  std::vector<Event> events;
  trace::Seq seq = 1;
  for (int i = 0; i < 20; ++i) {
    events.push_back(make_event(seq++, i % 2, EventKind::kMemWrite, 5));
  }
  RaceDetectorConfig cfg;
  cfg.max_pairs_per_var = 3;
  auto report = RaceDetector(cfg).analyze(events);
  ASSERT_TRUE(report.concurrent(5));
  EXPECT_EQ(report.verdict(5)->pairs.size(), 3u);
}

TEST(RaceDetector, SummaryMentionsMode) {
  auto report = RaceDetector().analyze({});
  EXPECT_NE(report.summary().find("hybrid"), std::string::npos);
}

}  // namespace
}  // namespace home::detect
