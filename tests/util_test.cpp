#include <gtest/gtest.h>

#include "src/util/flags.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/strings.hpp"

namespace home::util {
namespace {

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--nranks=8", "--name=lu"};
  Flags f = Flags::parse(3, argv);
  EXPECT_EQ(f.get_int("nranks", 0), 8);
  EXPECT_EQ(f.get("name", ""), "lu");
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--nranks", "16", "pos"};
  Flags f = Flags::parse(4, argv);
  EXPECT_EQ(f.get_int("nranks", 0), 16);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

TEST(Flags, BooleanForms) {
  const char* argv[] = {"prog", "--verbose", "--no-color"};
  Flags f = Flags::parse(3, argv);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("color", true));
}

TEST(Flags, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Flags f = Flags::parse(1, argv);
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(f.has("n"));
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.next_int(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, SplitJoinRoundTrip) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(to_lower("MPI_Send"), "mpi_send");
}

TEST(Strings, PrefixSuffixContains) {
  EXPECT_TRUE(starts_with("MPI_Recv", "MPI_"));
  EXPECT_TRUE(ends_with("halo.send", ".send"));
  EXPECT_TRUE(contains("omp parallel for", "parallel"));
  EXPECT_FALSE(starts_with("x", "xyz"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("MPI_Recv(MPI_Recv)", "MPI_Recv", "HMPI_Recv"),
            "HMPI_Recv(HMPI_Recv)");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Log, ParseLogLevelNamesDigitsAndRejects) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("9"), std::nullopt);
}

TEST(Log, FormatLineCarriesTimestampLevelAndThreadName) {
  set_current_thread_name("util-test");
  const std::string line = format_log_line(LogLevel::kWarn, "queue full");
  EXPECT_NE(line.find("[WARN]"), std::string::npos);
  EXPECT_NE(line.find("[util-test]"), std::string::npos);
  EXPECT_NE(line.find("queue full"), std::string::npos);
  // Uptime timestamp: the line starts with "[  <seconds>.xxx]".
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find('.'), std::string::npos);
}

TEST(Log, ThreadNameVersionBumpsOnRename) {
  const std::uint64_t before = current_thread_name_version();
  set_current_thread_name("renamed");
  EXPECT_GT(current_thread_name_version(), before);
  EXPECT_EQ(current_thread_name(), "renamed");
}

}  // namespace
}  // namespace home::util
