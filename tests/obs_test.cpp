// Tests for the telemetry layer (ISSUE-4): registry exactness under
// concurrency, the enabled() gate, span ring export as Chrome trace-event
// JSON, the telemetry snapshot schema, the EventQueue drop-cause split, and
// the online watermark-lag gauge bound.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/worksharing.hpp"
#include "src/obs/export.hpp"
#include "src/obs/span.hpp"
#include "src/obs/telemetry.hpp"
#include "src/online/event_queue.hpp"
#include "src/util/log.hpp"

namespace home::obs {
namespace {

/// Minimal JSON syntax checker: validates structure (objects, arrays,
/// strings with escapes, numbers, literals), not semantics.  Enough to
/// guarantee the exporters emit loadable JSON without a parser dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(pin); at != std::string::npos;
       at = hay.find(pin, at + pin.size())) {
    ++n;
  }
  return n;
}

TEST(Registry, CountersAreExactUnderConcurrency) {
  Registry& reg = Registry::global();
  set_enabled(true);
  Counter& c = reg.counter("test.obs.concurrent_counter");
  c.reset();
  Histogram& h = reg.histogram("test.obs.concurrent_hist");
  h.reset();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        if (i % 100 == 0) h.observe(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count, kThreads * (kPerThread / 100));
}

TEST(Registry, GaugeTracksHighWaterAcrossThreads) {
  Registry& reg = Registry::global();
  set_enabled(true);
  Gauge& g = reg.gauge("test.obs.hwm_gauge");
  g.reset();

  std::vector<std::thread> workers;
  for (int t = 1; t <= 8; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i <= 100; ++i) g.set(t * 100 + i % 3);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.high_water(), 802);  // max over all set() calls: 8*100+2.
}

TEST(Registry, DisabledGateFreezesEverything) {
  Registry& reg = Registry::global();
  set_enabled(true);
  Counter& c = reg.counter("test.obs.gated");
  c.reset();
  c.add(5);
  EXPECT_EQ(c.value(), 5u);

  set_enabled(false);
  c.add(100);
  reg.gauge("test.obs.gated_gauge").set(42);
  reg.histogram("test.obs.gated_hist").observe(1.0);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.gauge("test.obs.gated_gauge").value(), 0);
  EXPECT_EQ(reg.histogram("test.obs.gated_hist").snapshot().count, 0u);
  set_enabled(true);
}

TEST(Registry, ReferencesSurviveReset) {
  Registry& reg = Registry::global();
  set_enabled(true);
  Counter& before = reg.counter("test.obs.stable_ref");
  before.add(7);
  reg.reset();
  EXPECT_EQ(before.value(), 0u);  // zeroed in place...
  before.add(3);
  EXPECT_EQ(&reg.counter("test.obs.stable_ref"), &before);  // ...same object.
  EXPECT_EQ(before.value(), 3u);
}

TEST(Registry, HistogramSnapshotStatistics) {
  Registry& reg = Registry::global();
  set_enabled(true);
  Histogram& h = reg.histogram("test.obs.hist_stats");
  h.reset();
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_GT(snap.p95, snap.p50);  // bucketed quantiles are approximate but
  EXPECT_GE(snap.p99, snap.p95);  // must be ordered.
}

TEST(Spans, NestedSpansExportAsChromeTraceJson) {
  set_enabled(true);
  reset_spans();
  util::set_current_thread_name("obs-test");
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
    instant("test.pin", "detail text");
  }

  const std::vector<FinishedSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 3u);  // inner finishes first, then pin, then outer.
  const FinishedSpan* outer = nullptr;
  const FinishedSpan* inner = nullptr;
  const FinishedSpan* pin = nullptr;
  for (const FinishedSpan& s : spans) {
    if (s.name == "test.outer") outer = &s;
    if (s.name == "test.inner") inner = &s;
    if (s.name == "test.pin") pin = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(outer->thread, "obs-test");
  EXPECT_FALSE(outer->is_instant);
  EXPECT_TRUE(pin->is_instant);
  // Nesting: inner starts at/after outer and ends at/before outer ends.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  // The instant uses Chrome's "i" phase with thread scope.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Thread metadata row names the emitting thread.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("obs-test"), std::string::npos);
  // Exactly one complete event per span.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
}

TEST(Spans, DisabledSpansRecordNothing) {
  reset_spans();
  set_enabled(false);
  {
    Span span("test.should_not_exist");
    instant("test.no_pin");
  }
  set_enabled(true);
  for (const FinishedSpan& s : collect_spans()) {
    EXPECT_NE(s.name, "test.should_not_exist");
    EXPECT_NE(s.name, "test.no_pin");
  }
}

TEST(Exporters, TelemetryJsonHasRequiredKeysAndParses) {
  set_enabled(true);
  Registry::global().counter("test.obs.export_counter").add(2);
  const std::string json = telemetry_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  for (const char* key :
       {"\"telemetry\"", "\"enabled\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"test.obs.export_counter\":"), std::string::npos);
}

TEST(Exporters, PrometheusTextExposition) {
  set_enabled(true);
  Registry::global().counter("test.obs.prom_counter").reset();
  Registry::global().counter("test.obs.prom_counter").add(9);
  const std::string text = prometheus_text();
  EXPECT_NE(text.find("home_test_obs_prom_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE home_test_obs_prom_counter counter"),
            std::string::npos);
  // Every family leads with a HELP line naming the dotted source metric.
  EXPECT_NE(text.find("# HELP home_test_obs_prom_counter home metric "
                      "test.obs.prom_counter"),
            std::string::npos);
}

TEST(Exporters, PrometheusTextPassesItsOwnValidator) {
  set_enabled(true);
  Registry::global().counter("test.obs.prom_valid").add(1);
  Registry::global().gauge("test.obs.prom_gauge").set(4);
  Registry::global().histogram("test.obs.prom_hist").observe(2.5);
  const std::string text = prometheus_text();
  std::string error;
  EXPECT_TRUE(check_prometheus_text(text, &error)) << error;

  // The validator is not a rubber stamp: corruptions are rejected.
  EXPECT_FALSE(check_prometheus_text(
      "home_orphan_sample 3\n", &error));       // sample without TYPE.
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(check_prometheus_text(
      "# TYPE home_x counter\n# TYPE home_x counter\nhome_x 1\n",
      &error));                                 // duplicate TYPE.
  EXPECT_FALSE(check_prometheus_text(
      "# TYPE home_y bogus_kind\nhome_y 1\n", &error));
  EXPECT_FALSE(check_prometheus_text(
      "# TYPE home_z counter\nhome_z not_a_number\n", &error));
}

TEST(Exporters, SpanDropsAreSurfacedEverywhere) {
  set_enabled(true);
  reset_spans();
  // Overflow one thread's ring so the overwrite counter trips.
  for (std::size_t i = 0; i < kRingCapacity + 10; ++i) {
    instant("test.obs.drop_filler");
  }
  EXPECT_GT(spans_dropped(), 0u);

  const std::string json = telemetry_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"spans_dropped\":"), std::string::npos);
  // The JSON value reflects the live counter, not a hardcoded zero.
  const std::size_t at = json.find("\"spans_dropped\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json[at + std::string("\"spans_dropped\":").size()], '0');

  EXPECT_NE(summary_table().find("spans dropped (ring overwrite)"),
            std::string::npos);
  reset_spans();
  // After a reset the drop row disappears from the summary.
  EXPECT_EQ(summary_table().find("spans dropped (ring overwrite)"),
            std::string::npos);
}

TEST(Exporters, FlowEventsExportAsChromeFlowPair) {
  set_enabled(true);
  reset_spans();
  flow_start("test.flow", 42, "from endpoint A");
  flow_finish("test.flow", 42, "to endpoint B");
  const std::vector<FinishedSpan> spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].flow_phase, 's');
  EXPECT_EQ(spans[1].flow_phase, 'f');
  EXPECT_EQ(spans[0].flow_id, 42u);

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // Binding point "enclosing slice" on the finish side keeps Perfetto happy.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  reset_spans();
}

TEST(EventQueue, SplitsDropsByCause) {
  online::EventQueue q(2, online::BackpressurePolicy::kDropNewest);
  trace::Event e;
  e.kind = trace::EventKind::kMemWrite;
  EXPECT_TRUE(q.push(e));
  EXPECT_TRUE(q.push(e));
  EXPECT_FALSE(q.push(e));  // full: capacity drop.
  EXPECT_EQ(q.dropped_capacity(), 1u);
  EXPECT_EQ(q.dropped_shutdown(), 0u);

  q.close();
  EXPECT_FALSE(q.push(e));  // closed: shutdown drop.
  EXPECT_EQ(q.dropped_capacity(), 1u);
  EXPECT_EQ(q.dropped_shutdown(), 1u);
  EXPECT_EQ(q.dropped(), 2u);

  // The two pre-close events stay poppable.
  trace::Event out;
  EXPECT_TRUE(q.pop(&out));
  EXPECT_TRUE(q.pop(&out));
  EXPECT_FALSE(q.pop(&out));
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(EventQueue, BlockPolicyAccountsBlockedTime) {
  online::EventQueue q(1, online::BackpressurePolicy::kBlock);
  trace::Event e;
  e.kind = trace::EventKind::kMemWrite;
  EXPECT_TRUE(q.push(e));
  EXPECT_EQ(q.blocked_ns(), 0u);  // space was available: no clock touched.

  std::atomic<bool> pushed{false};
  std::thread producer([&q, &pushed] {
    trace::Event ev;
    ev.kind = trace::EventKind::kMemWrite;
    q.push(ev);  // full queue: must wait for the pop below.
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  trace::Event out;
  EXPECT_TRUE(q.pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GT(q.blocked_ns(), 0u);
  q.close();
}

TEST(Online, WatermarkLagGaugeIsBoundedByRetireInterval) {
  set_enabled(true);
  Registry& reg = Registry::global();
  reg.gauge("online.watermark.lag").reset();
  constexpr std::size_t kRetireInterval = 16;

  CheckConfig cfg;
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.retire_interval = kRetireInterval;
  const CheckResult result =
      check_program(cfg, [](simmpi::Process& p) {
        p.init_thread(simmpi::ThreadLevel::kMultiple, {"obs.init"});
        homp::parallel(2, [&] {
          volatile int sink = 0;
          for (int i = 0; i < 300; ++i) sink = sink + i;
          (void)sink;
          homp::barrier();
        });
        const int payload = p.rank();
        if (p.rank() == 0) {
          p.send(&payload, 1, simmpi::Datatype::kInt, 1, 7, simmpi::kCommWorld,
                 {"obs.send"});
        } else if (p.rank() == 1) {
          int got = 0;
          p.recv(&got, 1, simmpi::Datatype::kInt, 0, 7, simmpi::kCommWorld,
                 nullptr, {"obs.recv"});
        }
        p.finalize({"obs.finalize"});
      });
  ASSERT_TRUE(result.run.ok());
  ASSERT_GT(result.online_stats.events_processed, kRetireInterval);

  // The gauge is monotone within an epoch and resets at each checkpoint, so
  // its high-water mark can never exceed the retirement interval.
  const Gauge& lag = reg.gauge("online.watermark.lag");
  EXPECT_GT(lag.high_water(), 0);
  EXPECT_LE(lag.high_water(), static_cast<std::int64_t>(kRetireInterval));
}

}  // namespace
}  // namespace home::obs
