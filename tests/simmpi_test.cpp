#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/simmpi/api.hpp"
#include "src/simmpi/universe.hpp"

namespace home::simmpi {
namespace {

using trace::MpiCallType;

UniverseConfig config(int nranks, int timeout_ms = 5000) {
  UniverseConfig cfg;
  cfg.nranks = nranks;
  cfg.block_timeout_ms = timeout_ms;
  return cfg;
}

TEST(Universe, RunsEveryRankOnce) {
  Universe uni(config(4));
  std::atomic<int> mask{0};
  auto result = uni.run([&](Process& p) { mask.fetch_or(1 << p.rank()); });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(Universe, CurrentIsSetInsideRun) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    EXPECT_EQ(Universe::current(), &p);
    EXPECT_EQ(api::rank(), p.rank());
    EXPECT_EQ(api::size(), 2);
  });
  EXPECT_EQ(Universe::current(), nullptr);
}

TEST(Universe, CollectsRankExceptions) {
  Universe uni(config(3));
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 1) throw UsageError("boom");
  });
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.failed_ranks.size(), 1u);
  EXPECT_EQ(result.failed_ranks[0], 1);
  EXPECT_NE(result.errors[0].find("boom"), std::string::npos);
}

TEST(InitThread, ProvidedIsCappedByConfig) {
  UniverseConfig cfg = config(1);
  cfg.max_thread_level = ThreadLevel::kSerialized;
  Universe uni(cfg);
  uni.run([&](Process& p) {
    EXPECT_EQ(p.init_thread(ThreadLevel::kMultiple), ThreadLevel::kSerialized);
    EXPECT_EQ(p.provided_level(), ThreadLevel::kSerialized);
  });
}

TEST(InitThread, PlainInitGivesSingle) {
  Universe uni(config(1));
  uni.run([&](Process& p) {
    p.init();
    EXPECT_EQ(p.provided_level(), ThreadLevel::kSingle);
    EXPECT_TRUE(p.initialized());
    p.finalize();
    EXPECT_TRUE(p.finalized());
  });
}

TEST(P2P, BlockingSendRecvDeliversPayload) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    if (p.rank() == 0) {
      const int value = 4711;
      EXPECT_EQ(p.send(&value, 1, Datatype::kInt, 1, 7, kCommWorld), Err::kOk);
    } else {
      int value = 0;
      Status st;
      EXPECT_EQ(p.recv(&value, 1, Datatype::kInt, 0, 7, kCommWorld, &st), Err::kOk);
      EXPECT_EQ(value, 4711);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, 1);
    }
  });
}

TEST(P2P, WildcardSourceAndTagMatch) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const double x = 2.5;
      p.send(&x, 1, Datatype::kDouble, 1, 13, kCommWorld);
    } else {
      double x = 0;
      Status st;
      p.recv(&x, 1, Datatype::kDouble, kAnySource, kAnyTag, kCommWorld, &st);
      EXPECT_DOUBLE_EQ(x, 2.5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 13);
    }
  });
}

TEST(P2P, MessagesWithSameTagArriveInSendOrder) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 10; ++i) p.send(&i, 1, Datatype::kInt, 1, 0, kCommWorld);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, TruncationReported) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      int big[4] = {1, 2, 3, 4};
      p.send(big, 4, Datatype::kInt, 1, 0, kCommWorld);
    } else {
      int small[2] = {0, 0};
      EXPECT_EQ(p.recv(small, 2, Datatype::kInt, 0, 0, kCommWorld), Err::kTruncate);
      EXPECT_EQ(small[0], 1);
      EXPECT_EQ(small[1], 2);
    }
  });
}

TEST(P2P, IsendIrecvWithWait) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const long v = 99L;
      Request r = p.isend(&v, 1, Datatype::kLong, 1, 3, kCommWorld);
      EXPECT_EQ(p.wait(r), Err::kOk);
    } else {
      long v = 0;
      Request r = p.irecv(&v, 1, Datatype::kLong, 0, 3, kCommWorld);
      Status st;
      EXPECT_EQ(p.wait(r, &st), Err::kOk);
      EXPECT_EQ(v, 99L);
      EXPECT_GT(st.msg_id, 0u);  // populated.
    }
  });
}

TEST(P2P, TestPollsUntilComplete) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      p.barrier(kCommWorld);  // make the receiver poll first.
      const int v = 5;
      p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
    } else {
      int v = 0;
      Request r = p.irecv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
      EXPECT_FALSE(p.test(r));  // nothing sent yet.
      p.barrier(kCommWorld);
      Status st;
      while (!p.test(r, &st)) {}
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(P2P, ProbeSeesMessageWithoutConsuming) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 77;
      p.send(&v, 1, Datatype::kInt, 1, 9, kCommWorld);
    } else {
      Status st;
      p.probe(0, 9, kCommWorld, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.count, 1);
      int v = 0;
      p.recv(&v, st.count, Datatype::kInt, st.source, st.tag, kCommWorld);
      EXPECT_EQ(v, 77);
    }
  });
}

TEST(P2P, IprobeNonBlocking) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 1) {
      Status st;
      EXPECT_FALSE(p.iprobe(0, 4, kCommWorld, &st));
      p.barrier(kCommWorld);
      p.barrier(kCommWorld);
      EXPECT_TRUE(p.iprobe(0, 4, kCommWorld, &st));
      int v;
      p.recv(&v, 1, Datatype::kInt, 0, 4, kCommWorld);
    } else {
      p.barrier(kCommWorld);
      const int v = 1;
      p.send(&v, 1, Datatype::kInt, 1, 4, kCommWorld);
      p.barrier(kCommWorld);
    }
  });
}

TEST(P2P, RecvTimesOutWhenNoSender) {
  Universe uni(config(1, /*timeout_ms=*/50));
  auto result = uni.run([&](Process& p) {
    int v;
    p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
  });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].find("timed out"), std::string::npos);
}

TEST(P2P, RendezvousSendCompletesWhenMatched) {
  UniverseConfig cfg = config(2);
  cfg.rendezvous_sends = true;
  Universe uni(cfg);
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 1;
      EXPECT_EQ(p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld), Err::kOk);
    } else {
      int v = 0;
      p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
      EXPECT_EQ(v, 1);
    }
  });
  EXPECT_TRUE(result.ok());
}

TEST(P2P, RendezvousSendTimesOutWithoutReceiver) {
  UniverseConfig cfg = config(2, /*timeout_ms=*/50);
  cfg.rendezvous_sends = true;
  Universe uni(cfg);
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 1;
      p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
    }
    // rank 1 never receives.
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failed_ranks[0], 0);
}

TEST(P2P, SendrecvExchangesSymmetrically) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    const int mine = p.rank() * 10;
    int theirs = -1;
    const int peer = 1 - p.rank();
    p.sendrecv(&mine, 1, Datatype::kInt, peer, 0, &theirs, 1, Datatype::kInt,
               peer, 0, kCommWorld);
    EXPECT_EQ(theirs, peer * 10);
  });
}

TEST(Collectives, BarrierSynchronizes) {
  Universe uni(config(4));
  std::atomic<int> before{0};
  uni.run([&](Process& p) {
    before.fetch_add(1);
    p.barrier(kCommWorld);
    EXPECT_EQ(before.load(), 4);
  });
}

TEST(Collectives, BcastFromNonzeroRoot) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    int v = p.rank() == 2 ? 1234 : 0;
    p.bcast(&v, 1, Datatype::kInt, 2, kCommWorld);
    EXPECT_EQ(v, 1234);
  });
}

TEST(Collectives, ReduceSumAtRoot) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    const int mine = p.rank() + 1;
    int sum = -1;
    p.reduce(&mine, &sum, 1, Datatype::kInt, ReduceOp::kSum, 0, kCommWorld);
    if (p.rank() == 0) {
      EXPECT_EQ(sum, 1 + 2 + 3 + 4);
    }
  });
}

TEST(Collectives, AllreduceMinMaxEverywhere) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    const double mine = static_cast<double>(p.rank());
    double lo = -1, hi = -1;
    p.allreduce(&mine, &lo, 1, Datatype::kDouble, ReduceOp::kMin, kCommWorld);
    p.allreduce(&mine, &hi, 1, Datatype::kDouble, ReduceOp::kMax, kCommWorld);
    EXPECT_DOUBLE_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, 3.0);
  });
}

TEST(Collectives, GatherAndAllgather) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    const int mine = p.rank() * 2;
    std::vector<int> all(3, -1);
    p.gather(&mine, 1, Datatype::kInt, all.data(), 0, kCommWorld);
    if (p.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{0, 2, 4}));
    }
    std::vector<int> all2(3, -1);
    p.allgather(&mine, 1, Datatype::kInt, all2.data(), kCommWorld);
    EXPECT_EQ(all2, (std::vector<int>{0, 2, 4}));
  });
}

TEST(Collectives, ScatterSlices) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    std::vector<int> src{10, 20, 30};
    int mine = -1;
    p.scatter(p.rank() == 0 ? src.data() : nullptr, 1, Datatype::kInt, &mine, 0,
              kCommWorld);
    EXPECT_EQ(mine, (p.rank() + 1) * 10);
  });
}

TEST(Collectives, AlltoallTransposes) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    std::vector<int> send{p.rank() * 100 + 0, p.rank() * 100 + 1, p.rank() * 100 + 2};
    std::vector<int> recv(3, -1);
    p.alltoall(send.data(), 1, Datatype::kInt, recv.data(), kCommWorld);
    for (int r = 0; r < 3; ++r) EXPECT_EQ(recv[static_cast<std::size_t>(r)], r * 100 + p.rank());
  });
}

TEST(Collectives, MismatchedCollectiveThrows) {
  Universe uni(config(2, /*timeout_ms=*/500));
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 0) {
      p.barrier(kCommWorld);
    } else {
      int v = 0;
      p.bcast(&v, 1, Datatype::kInt, 0, kCommWorld);
    }
  });
  EXPECT_FALSE(result.ok());
}

TEST(Comms, DupCreatesIndependentChannel) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    Comm dup = p.comm_dup(kCommWorld);
    EXPECT_NE(dup.id, kCommWorld.id);
    // A message on the duplicate does not match a receive on world.
    if (p.rank() == 0) {
      const int v = 1;
      p.send(&v, 1, Datatype::kInt, 1, 0, dup);
      const int w = 2;
      p.send(&w, 1, Datatype::kInt, 1, 0, kCommWorld);
    } else {
      int w = 0;
      p.recv(&w, 1, Datatype::kInt, 0, 0, kCommWorld);
      EXPECT_EQ(w, 2);
      int v = 0;
      p.recv(&v, 1, Datatype::kInt, 0, 0, dup);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Comms, SplitByParity) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    Comm sub = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    EXPECT_EQ(p.comm_size(sub), 2);
    // Members of one color see contiguous comm ranks ordered by key.
    EXPECT_EQ(p.comm_rank(sub), p.rank() / 2);
    // Collective restricted to the subgroup.
    int sum = 0;
    const int mine = p.rank();
    p.allreduce(&mine, &sum, 1, Datatype::kInt, ReduceOp::kSum, sub);
    EXPECT_EQ(sum, p.rank() % 2 == 0 ? 0 + 2 : 1 + 3);
  });
}

TEST(Comms, RanksTranslateBetweenWorldAndSub) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    // Put ranks in reverse order via the key argument.
    Comm sub = p.comm_split(kCommWorld, 0, -p.rank());
    EXPECT_EQ(p.comm_rank(sub), 3 - p.rank());
  });
}

TEST(Comms, InvalidCommThrows) {
  Universe uni(config(1));
  auto result = uni.run([&](Process& p) {
    int v = 0;
    p.send(&v, 1, Datatype::kInt, 0, 0, Comm{999});
  });
  EXPECT_FALSE(result.ok());
}

TEST(Hooks, BeginAndEndFireWithCallDesc) {
  struct Recorder : MpiHooks {
    std::atomic<int> begins{0};
    std::atomic<int> ends{0};
    std::atomic<int> last_tag{-1};
    void on_call_begin(const CallDesc& desc) override {
      begins.fetch_add(1);
      if (desc.type == MpiCallType::kSend) last_tag.store(desc.tag);
    }
    void on_call_end(const CallDesc&) override { ends.fetch_add(1); }
  } recorder;

  Universe uni(config(2));
  uni.hooks().add(&recorder);
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 0;
      p.send(&v, 1, Datatype::kInt, 1, 42, kCommWorld);
    } else {
      int v;
      p.recv(&v, 1, Datatype::kInt, 0, 42, kCommWorld);
    }
  });
  EXPECT_EQ(recorder.begins.load(), recorder.ends.load());
  EXPECT_GE(recorder.begins.load(), 2);
  EXPECT_EQ(recorder.last_tag.load(), 42);
}

TEST(Hooks, CallsiteLabelPropagates) {
  struct Recorder : MpiHooks {
    std::string last;
    void on_call_begin(const CallDesc& desc) override {
      if (desc.callsite) last = desc.callsite;
    }
  } recorder;
  Universe uni(config(2));
  uni.hooks().add(&recorder);
  uni.run([&](Process& p) {
    CallOpts opts;
    opts.callsite = "test.site";
    if (p.rank() == 0) {
      const int v = 0;
      p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld, opts);
    } else {
      int v;
      p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
    }
  });
  EXPECT_EQ(recorder.last, "test.site");
}

TEST(P2P, SsendCompletesOnlyWhenMatched) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 3;
      EXPECT_EQ(p.ssend(&v, 1, Datatype::kInt, 1, 0, kCommWorld), Err::kOk);
    } else {
      int v = 0;
      p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
      EXPECT_EQ(v, 3);
    }
  });
}

TEST(P2P, SsendTimesOutWithoutReceiver) {
  Universe uni(config(2, /*timeout_ms=*/50));
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 3;
      p.ssend(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
    }
  });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].find("Ssend"), std::string::npos);
}

TEST(MultiRequest, WaitallCompletesEverything) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        const int v = i * 10;
        p.send(&v, 1, Datatype::kInt, 1, i, kCommWorld);
      }
    } else {
      int values[4] = {-1, -1, -1, -1};
      std::vector<Request> requests;
      for (int i = 0; i < 4; ++i) {
        requests.push_back(p.irecv(&values[i], 1, Datatype::kInt, 0, i, kCommWorld));
      }
      std::vector<Status> statuses(4);
      EXPECT_EQ(p.waitall(requests, statuses.data()), Err::kOk);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(values[i], i * 10);
        EXPECT_EQ(statuses[static_cast<std::size_t>(i)].tag, i);
      }
    }
  });
}

TEST(MultiRequest, WaitanyReturnsACompletedIndex) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      const int v = 5;
      p.send(&v, 1, Datatype::kInt, 1, 1, kCommWorld);  // only tag 1 is sent.
    } else {
      int a = -1, b = -1;
      std::vector<Request> requests{
          p.irecv(&a, 1, Datatype::kInt, 0, 0, kCommWorld),
          p.irecv(&b, 1, Datatype::kInt, 0, 1, kCommWorld),
      };
      Status st;
      EXPECT_EQ(p.waitany(requests, &st), 1);
      EXPECT_EQ(b, 5);
      EXPECT_EQ(st.tag, 1);
    }
  });
}

TEST(MultiRequest, TestallReflectsPartialCompletion) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      p.barrier(kCommWorld);
      const int v = 1;
      p.send(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
      p.send(&v, 1, Datatype::kInt, 1, 1, kCommWorld);
      p.barrier(kCommWorld);
    } else {
      int a, b;
      std::vector<Request> requests{
          p.irecv(&a, 1, Datatype::kInt, 0, 0, kCommWorld),
          p.irecv(&b, 1, Datatype::kInt, 0, 1, kCommWorld),
      };
      EXPECT_FALSE(p.testall(requests));  // nothing sent yet.
      p.barrier(kCommWorld);
      p.barrier(kCommWorld);
      while (!p.testall(requests)) {}
    }
  });
}

TEST(Persistent, RecvInitStartCycle) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        p.send(&i, 1, Datatype::kInt, 1, 0, kCommWorld);
        p.barrier(kCommWorld);
      }
    } else {
      int v = -1;
      Request persistent = p.recv_init(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
      for (int i = 0; i < 3; ++i) {
        p.start(persistent);
        EXPECT_EQ(p.wait(persistent), Err::kOk);
        EXPECT_EQ(v, i);
        p.barrier(kCommWorld);
      }
    }
  });
}

TEST(Persistent, SendInitStartCycle) {
  Universe uni(config(2));
  uni.run([&](Process& p) {
    int payload = 0;
    if (p.rank() == 0) {
      Request persistent = p.send_init(&payload, 1, Datatype::kInt, 1, 0,
                                       kCommWorld);
      for (int i = 0; i < 3; ++i) {
        payload = 100 + i;
        p.start(persistent);
        p.wait(persistent);
        p.barrier(kCommWorld);
      }
    } else {
      for (int i = 0; i < 3; ++i) {
        int v = -1;
        p.recv(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
        EXPECT_EQ(v, 100 + i);
        p.barrier(kCommWorld);
      }
    }
  });
}

TEST(Persistent, StartOnNonPersistentThrows) {
  Universe uni(config(2));
  auto result = uni.run([&](Process& p) {
    if (p.rank() != 0) return;
    int v;
    Request plain = p.irecv(&v, 1, Datatype::kInt, 1, 0, kCommWorld);
    p.start(plain);
  });
  EXPECT_FALSE(result.ok());
}

TEST(Collectives, ScanInclusivePrefix) {
  Universe uni(config(4));
  uni.run([&](Process& p) {
    const int mine = p.rank() + 1;
    int prefix = -1;
    p.scan(&mine, &prefix, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld);
    // rank r gets 1 + 2 + ... + (r+1).
    EXPECT_EQ(prefix, (p.rank() + 1) * (p.rank() + 2) / 2);
  });
}

TEST(Collectives, ReduceScatterBlock) {
  Universe uni(config(3));
  uni.run([&](Process& p) {
    // Every rank contributes the vector [1, 2, 3]; the sum [3, 6, 9] is
    // scattered one element per rank.
    const int contribution[3] = {1, 2, 3};
    int mine = -1;
    p.reduce_scatter_block(contribution, &mine, 1, Datatype::kInt,
                           ReduceOp::kSum, kCommWorld);
    EXPECT_EQ(mine, (p.rank() + 1) * 3);
  });
}

TEST(Collectives, ScanSingleRank) {
  Universe uni(config(1));
  uni.run([&](Process& p) {
    const double x = 2.5;
    double y = 0;
    p.scan(&x, &y, 1, Datatype::kDouble, ReduceOp::kSum, kCommWorld);
    EXPECT_DOUBLE_EQ(y, 2.5);
  });
}

TEST(Universe, RunIsSingleShot) {
  Universe uni(config(2));
  uni.run([](Process&) {});
  EXPECT_THROW(uni.run([](Process&) {}), UsageError);
}

TEST(Types, DatatypeSizes) {
  EXPECT_EQ(datatype_size(Datatype::kInt), sizeof(int));
  EXPECT_EQ(datatype_size(Datatype::kDouble), sizeof(double));
  EXPECT_EQ(datatype_size(Datatype::kByte), 1u);
}

TEST(Types, Names) {
  EXPECT_STREQ(thread_level_name(ThreadLevel::kFunneled), "MPI_THREAD_FUNNELED");
  EXPECT_STREQ(reduce_op_name(ReduceOp::kSum), "MPI_SUM");
  EXPECT_STREQ(datatype_name(Datatype::kDouble), "MPI_DOUBLE");
}

}  // namespace
}  // namespace home::simmpi
