// Trace durability tests (ISSUE-10): CRC32-framed WAL round trips, the
// salvage loader's longest-valid-prefix discipline over torn/corrupt files,
// degraded-mode analysis of salvaged traces, and the hardened (lenient)
// text-trace loader over the committed 20-case corrupted corpus.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/trace/trace_io.hpp"
#include "src/trace/wal.hpp"

#ifndef HOME_CORPUS_DIR
#define HOME_CORPUS_DIR "tests/corrupt_corpus"
#endif

namespace home {
namespace {

using namespace simmpi;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

trace::Event make_event(trace::Seq seq, trace::Tid tid, trace::EventKind kind,
                        trace::ObjId obj) {
  trace::Event e;
  e.seq = seq;
  e.tid = tid;
  e.kind = kind;
  e.obj = obj;
  return e;
}

/// A small WAL file with string frames and MPI-annotated events; returns its
/// path and the number of events written.
std::string write_sample_wal(std::size_t* events_out) {
  const std::string path = testing::TempDir() + "/home_wal_sample.bin";
  trace::TraceLog log;
  trace::WalWriter wal(path, &log.strings());
  EXPECT_TRUE(wal.ok());
  log.set_sink(&wal);

  trace::Event call = make_event(0, 3, trace::EventKind::kMpiCall, 0);
  call.rank = 1;
  trace::MpiCallInfo info;
  info.type = trace::MpiCallType::kRecv;
  info.peer = 0;
  info.tag = 5;
  info.comm = 1;
  info.callsite = log.strings().intern("wal.recv site");
  call.mpi = info;
  log.emit(std::move(call));
  log.emit(make_event(0, 1, trace::EventKind::kMemWrite, 42));
  auto locked = make_event(0, 2, trace::EventKind::kLockAcquire, 7);
  locked.locks_held = {7, 9};
  log.emit(std::move(locked));

  log.set_sink(nullptr);
  wal.close();
  if (events_out != nullptr) *events_out = 3;
  return path;
}

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check vector.
  EXPECT_EQ(trace::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(trace::crc32("", 0), 0u);
}

TEST(Wal, CleanFileRoundTrips) {
  std::size_t written = 0;
  const std::string path = write_sample_wal(&written);

  trace::WalSalvage salvage;
  const trace::LoadedTrace loaded = trace::salvage_wal_file(path, &salvage);
  EXPECT_TRUE(salvage.clean());
  EXPECT_EQ(salvage.events, written);
  EXPECT_EQ(salvage.corrupt_frames, 0u);
  EXPECT_EQ(salvage.bytes_discarded, 0u);
  ASSERT_EQ(loaded.events.size(), written);
  // Events come back seq-sorted with payloads intact.
  EXPECT_LE(loaded.events[0].seq, loaded.events[1].seq);
  bool found_mpi = false;
  for (const trace::Event& e : loaded.events) {
    if (e.mpi.has_value()) {
      found_mpi = true;
      EXPECT_EQ(e.mpi->tag, 5);
      EXPECT_EQ(loaded.label(e.mpi->callsite), "wal.recv site");
    }
  }
  EXPECT_TRUE(found_mpi);
  std::remove(path.c_str());
}

TEST(Wal, TruncationAtEveryByteNeverThrowsAndRecoversAPrefix) {
  std::size_t written = 0;
  const std::string path = write_sample_wal(&written);
  const std::string bytes = slurp(path);
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), 16u);

  std::size_t prev_events = 0;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    trace::WalSalvage salvage;
    trace::LoadedTrace loaded;
    ASSERT_NO_THROW(loaded = trace::salvage_wal(in, &salvage))
        << "cut at byte " << cut;
    EXPECT_LE(loaded.events.size(), written);
    // Longer prefixes never recover less.
    EXPECT_GE(loaded.events.size(), prev_events) << "cut at byte " << cut;
    prev_events = loaded.events.size();
    // A cut landing exactly on a frame boundary is indistinguishable from a
    // clean EOF (by design); everywhere else the torn tail must be reported.
    if (salvage.clean()) {
      EXPECT_EQ(salvage.bytes_discarded, 0u) << "cut at byte " << cut;
      EXPECT_EQ(salvage.bytes_recovered, cut) << "cut at byte " << cut;
    } else {
      EXPECT_LT(cut, bytes.size());
      // Either a torn tail was discarded or the header itself is gone (an
      // empty/short file has no bytes to discard).
      EXPECT_TRUE(salvage.bytes_discarded > 0 || salvage.missing_header)
          << "cut at byte " << cut;
    }
    if (cut == bytes.size()) {
      EXPECT_TRUE(salvage.clean());
      EXPECT_EQ(loaded.events.size(), written);
    }
  }
}

TEST(Wal, FlippedByteEndsRecoveryAtTheDamagedFrame) {
  std::size_t written = 0;
  const std::string path = write_sample_wal(&written);
  std::string bytes = slurp(path);
  std::remove(path.c_str());

  // Flip one byte in the *last* frame's payload region: the prefix before
  // it must survive, the damaged frame must be rejected by CRC.
  bytes[bytes.size() - 6] ^= 0x5A;
  std::istringstream in(bytes);
  trace::WalSalvage salvage;
  const trace::LoadedTrace loaded = trace::salvage_wal(in, &salvage);
  EXPECT_FALSE(salvage.clean());
  EXPECT_GE(salvage.corrupt_frames, 1u);
  EXPECT_LT(loaded.events.size(), written);
  EXPECT_GT(salvage.bytes_recovered, 0u);
  EXPECT_GT(salvage.bytes_discarded, 0u);
}

TEST(Wal, MissingHeaderIsUnrecoverableButAccounted) {
  std::istringstream in("this is not a WAL file at all");
  trace::WalSalvage salvage;
  const trace::LoadedTrace loaded = trace::salvage_wal(in, &salvage);
  EXPECT_TRUE(salvage.missing_header);
  EXPECT_FALSE(salvage.clean());
  EXPECT_TRUE(loaded.events.empty());
  EXPECT_GT(salvage.bytes_discarded, 0u);
}

TEST(Wal, SessionWalMatchesPostMortemAnalysis) {
  const std::string path = testing::TempDir() + "/home_wal_session.bin";
  SessionConfig scfg;
  scfg.wal_path = path;

  Report live({}, {});
  {
    Session session(scfg);
    UniverseConfig ucfg;
    ucfg.nranks = 2;
    session.configure(ucfg);
    Universe universe(ucfg);
    session.attach(universe);
    homp::set_default_threads(2);
    universe.run([](Process& p) {
      p.init_thread(ThreadLevel::kMultiple);
      homp::parallel(2, [&] {
        int a = 0;
        const int peer = 1 - p.rank();
        if (p.rank() == 0) {
          p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"wt.send"});
        } else {
          p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr,
                 {"wt.recv"});
        }
      });
      p.finalize();
    });
    session.detach(universe);
    live = session.analyze();
  }  // session teardown closes the WAL.
  ASSERT_TRUE(live.has(spec::ViolationType::kConcurrentRecv));

  // The WAL alone reproduces the verdict, and a clean WAL is not degraded.
  trace::WalSalvage salvage;
  const Report recovered = analyze_wal_file(path, scfg, &salvage);
  EXPECT_TRUE(salvage.clean());
  EXPECT_EQ(recovered.verdict(), Verdict::kExact);
  EXPECT_TRUE(recovered.has(spec::ViolationType::kConcurrentRecv));
  EXPECT_EQ(recovered.violations().size(), live.violations().size());

  // A torn copy of the same WAL analyzes degraded, with the damage named.
  const std::string torn_path = testing::TempDir() + "/home_wal_torn.bin";
  const std::string bytes = slurp(path);
  {
    std::ofstream out(torn_path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - bytes.size() / 3));
  }
  trace::WalSalvage torn_salvage;
  const Report degraded = analyze_wal_file(torn_path, scfg, &torn_salvage);
  EXPECT_FALSE(torn_salvage.clean());
  EXPECT_EQ(degraded.verdict(), Verdict::kDegraded);
  EXPECT_FALSE(degraded.degraded_reasons().empty());
  std::remove(path.c_str());
  std::remove(torn_path.c_str());
}

// --- hardened text loader over the committed corrupted corpus ---------------

struct CorpusCase {
  const char* file;
  std::size_t events;    ///< events the lenient loader must still recover.
  std::size_t corrupt;   ///< corrupt records it must count.
};

TEST(CorruptCorpus, LenientLoaderSurvivesAllTwentyCases) {
  const CorpusCase kCases[] = {
      {"case01_short_event.trace", 4, 1},
      {"case02_bad_tag.trace", 4, 1},
      {"case03_truncated_lockset.trace", 4, 1},
      {"case04_absurd_lock_count.trace", 4, 1},
      {"case05_negative_kind.trace", 4, 1},
      {"case06_huge_kind.trace", 4, 1},
      {"case07_absurd_string_id.trace", 4, 1},
      {"case08_short_string.trace", 4, 1},
      {"case09_truncated_mpi.trace", 4, 1},
      {"case10_bad_marker.trace", 4, 1},
      {"case11_missing_header.trace", 4, 1},
      {"case12_wrong_version.trace", 4, 1},
      {"case13_garbage_line.trace", 4, 1},
      {"case14_nonnumeric_seq.trace", 4, 1},
      {"case15_torn_tail.trace", 4, 1},
      {"case16_empty.trace", 0, 0},
      {"case17_header_only.trace", 0, 0},
      {"case18_lone_tag.trace", 1, 1},
      {"case19_nonnumeric_string_id.trace", 4, 1},
      {"case20_multi_damage.trace", 3, 4},
  };
  static_assert(sizeof(kCases) / sizeof(kCases[0]) == 20,
                "the corpus is specified as twenty cases");

  for (const CorpusCase& c : kCases) {
    const std::string path = std::string(HOME_CORPUS_DIR) + "/" + c.file;
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << "missing corpus file " << path;
    trace::ReadStats stats;
    trace::LoadedTrace loaded;
    ASSERT_NO_THROW(loaded = trace::read_trace_lenient(in, &stats)) << c.file;
    EXPECT_EQ(loaded.events.size(), c.events) << c.file;
    EXPECT_EQ(stats.corrupt_records, c.corrupt) << c.file;
  }
}

TEST(CorruptCorpus, StrictLoaderRejectsWhatLenientSkips) {
  // The strict loader must refuse the same damage the lenient one skips —
  // silent zero-filled events are the failure mode both guard against.
  const char* kThrowing[] = {
      "case01_short_event.trace",  "case03_truncated_lockset.trace",
      "case09_truncated_mpi.trace", "case11_missing_header.trace",
      "case15_torn_tail.trace",
  };
  for (const char* file : kThrowing) {
    std::ifstream in(std::string(HOME_CORPUS_DIR) + "/" + file);
    ASSERT_TRUE(in.is_open()) << file;
    EXPECT_THROW(trace::read_trace(in), std::runtime_error) << file;
  }
}

}  // namespace
}  // namespace home
