// Tests for the static MHP + lockset dataflow engine (src/sast/mhp.*):
// barrier-phase separation, nested regions, worksharing nowait, one-thread
// constructs, interprocedural context propagation (locks / master /
// recursion), plan pruning driven by the engine, and — the safety net — a
// randomized consistency check of the computed facts against brute-force
// path enumeration over the CFG.
//
// The anticipation suite at the bottom mirrors the seeded violation classes
// of tests/home_integration_test.cpp: each dynamic violation class has a
// C-source analogue here that the static engine must warn about, and a
// repaired twin that must produce zero definite warnings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/sast/analysis.hpp"
#include "src/sast/cfg.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/sast/mhp.hpp"
#include "src/sast/parser.hpp"
#include "src/sast/static_lockset.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace {

using namespace home;
using namespace home::sast;

/// n-th call site (0-based) of `routine`, in source order.
const MpiCallSite* find_site(const AnalysisResult& result,
                             const std::string& routine, int nth = 0) {
  for (const auto& site : result.calls) {
    if (site.routine != routine) continue;
    if (nth-- == 0) return &site;
  }
  return nullptr;
}

const FunctionFacts& facts_of(const AnalysisResult& result,
                              const MpiCallSite& site) {
  return result.facts.functions.at(static_cast<std::size_t>(site.fn_index));
}

bool has_class(const std::vector<StaticWarning>& warnings, WarningClass cls) {
  for (const auto& w : warnings) {
    if (w.cls == cls) return true;
  }
  return false;
}

bool has_definite(const std::vector<StaticWarning>& warnings,
                  WarningClass cls) {
  for (const auto& w : warnings) {
    if (w.cls == cls && w.severity == Severity::kDefinite) return true;
  }
  return false;
}

std::size_t definite_count(const std::vector<StaticWarning>& warnings) {
  std::size_t n = 0;
  for (const auto& w : warnings) {
    if (w.severity == Severity::kDefinite) ++n;
  }
  return n;
}

std::string warnings_dump(const std::vector<StaticWarning>& warnings) {
  std::ostringstream os;
  for (const auto& w : warnings) os << "  " << w.to_string() << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Barrier phases.

TEST(MhpPhases, BarrierSeparatesSites) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    #pragma omp barrier
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);

  ASSERT_EQ(send->fn_index, recv->fn_index);
  EXPECT_FALSE(ff.mhp(send->node_id, recv->node_id));
  // Ignoring barrier separation the two sites ARE parallel — that is exactly
  // what the prune-reason attribution relies on.
  EXPECT_TRUE(ff.mhp(send->node_id, recv->node_id, /*use_phases=*/false));

  const int region = ff.at(send->node_id).region_chain.back();
  const PhaseInterval& p_send = ff.at(send->node_id).phases.at(region);
  const PhaseInterval& p_recv = ff.at(recv->node_id).phases.at(region);
  EXPECT_EQ(p_send.min, 0);
  EXPECT_EQ(p_send.max, 0);
  EXPECT_EQ(p_recv.min, 1);
  EXPECT_EQ(p_recv.max, 1);
  EXPECT_FALSE(p_recv.unbounded);
}

TEST(MhpPhases, ConditionalBarrierKeepsSitesParallel) {
  // The barrier executes only on one branch, so the phase interval of the
  // second site is [0,1] and overlaps the first site's [0,0].
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    if (x > 0) {
      #pragma omp barrier
    }
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);

  const int region = ff.at(recv->node_id).region_chain.back();
  const PhaseInterval& p_recv = ff.at(recv->node_id).phases.at(region);
  EXPECT_EQ(p_recv.min, 0);
  EXPECT_EQ(p_recv.max, 1);
  EXPECT_TRUE(ff.mhp(send->node_id, recv->node_id));
}

TEST(MhpPhases, BarrierInLoopWidensToUnbounded) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    while (x > 0) {
      #pragma omp barrier
      x = x - 1;
    }
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);

  const int region = ff.at(recv->node_id).region_chain.back();
  const PhaseInterval& p_recv = ff.at(recv->node_id).phases.at(region);
  EXPECT_EQ(p_recv.min, 0);  // zero-iteration path
  EXPECT_TRUE(p_recv.unbounded);
  // Unbounded phase overlaps everything: separation is unprovable.
  EXPECT_TRUE(ff.mhp(send->node_id, recv->node_id));
}

TEST(MhpPhases, WorksharingImpliedBarrierSeparates) {
  // `omp for` without nowait has an implied barrier at its end; with nowait
  // the barrier disappears and the sites stay may-happen-in-parallel.
  const char* with_nowait = R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp for nowait
    for (i = 0; i < n; i = i + 1) {
      MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    }
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)";
  const char* without_nowait = R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp for
    for (i = 0; i < n; i = i + 1) {
      MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    }
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)";
  {
    const auto result = analyze_source(with_nowait);
    const MpiCallSite* send = find_site(result, "MPI_Send");
    const MpiCallSite* recv = find_site(result, "MPI_Recv");
    ASSERT_NE(send, nullptr);
    ASSERT_NE(recv, nullptr);
    EXPECT_TRUE(
        facts_of(result, *send).mhp(send->node_id, recv->node_id))
        << "nowait removes the implied barrier";
  }
  {
    const auto result = analyze_source(without_nowait);
    const MpiCallSite* send = find_site(result, "MPI_Send");
    const MpiCallSite* recv = find_site(result, "MPI_Recv");
    ASSERT_NE(send, nullptr);
    ASSERT_NE(recv, nullptr);
    EXPECT_FALSE(
        facts_of(result, *send).mhp(send->node_id, recv->node_id))
        << "implied barrier at the end of omp for separates the sites";
  }
}

TEST(MhpPhases, SingleNowaitStaysConcurrent) {
  const char* tmpl = R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp single%s
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
    #pragma omp single
    { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
  }
}
)";
  char with_nowait[512], without_nowait[512];
  std::snprintf(with_nowait, sizeof(with_nowait), tmpl, " nowait");
  std::snprintf(without_nowait, sizeof(without_nowait), tmpl, "");
  {
    const auto result = analyze_source(with_nowait);
    const MpiCallSite* send = find_site(result, "MPI_Send");
    const MpiCallSite* recv = find_site(result, "MPI_Recv");
    ASSERT_NE(send, nullptr);
    ASSERT_NE(recv, nullptr);
    // Distinct singles, no barrier between them: one thread may still be in
    // the first single while another runs the second.
    EXPECT_TRUE(facts_of(result, *send).mhp(send->node_id, recv->node_id));
  }
  {
    const auto result = analyze_source(without_nowait);
    const MpiCallSite* send = find_site(result, "MPI_Send");
    const MpiCallSite* recv = find_site(result, "MPI_Recv");
    ASSERT_NE(send, nullptr);
    ASSERT_NE(recv, nullptr);
    EXPECT_FALSE(facts_of(result, *send).mhp(send->node_id, recv->node_id));
  }
}

// ---------------------------------------------------------------------------
// Region structure.

TEST(MhpRegions, NestedParallelRegions) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp parallel
    {
      MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
      #pragma omp barrier
    }
    MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st);
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);

  EXPECT_EQ(ff.at(send->node_id).region_chain.size(), 2u);
  EXPECT_EQ(ff.at(recv->node_id).region_chain.size(), 1u);
  // The barrier belongs to the inner region only — it does not order the
  // outer region's sites, which share the outer region and stay parallel.
  EXPECT_TRUE(ff.mhp(send->node_id, recv->node_id));
}

TEST(MhpRegions, SequentialTopLevelRegionsDoNotOverlap) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
  #pragma omp parallel
  { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);
  // No common enclosing region: the first region joins before the second
  // forks.
  EXPECT_FALSE(ff.mhp(send->node_id, recv->node_id));
}

TEST(MhpRegions, MasterBodiesAreSerialized) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp master
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
    #pragma omp master
    { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);
  EXPECT_TRUE(ff.at(send->node_id).in_master);
  EXPECT_TRUE(ff.at(recv->node_id).in_master);
  // Both bodies run on the master thread — same thread, never concurrent
  // (master has no implied barrier, so phases alone would not prove this).
  EXPECT_FALSE(ff.mhp(send->node_id, recv->node_id));
  EXPECT_FALSE(ff.self_mhp(send->node_id));
}

TEST(MhpRegions, SectionsArePairwiseConcurrentButNotSelfConcurrent) {
  const auto result = analyze_source(R"(
void f() {
  #pragma omp parallel
  {
    #pragma omp sections
    {
      #pragma omp section
      { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
      #pragma omp section
      { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
    }
  }
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  const FunctionFacts& ff = facts_of(result, *send);
  EXPECT_TRUE(ff.at(send->node_id).in_section);
  // Different sections go to different threads — concurrent with each other,
  // but each section body executes on one thread only.
  EXPECT_TRUE(ff.mhp(send->node_id, recv->node_id));
  EXPECT_FALSE(ff.self_mhp(send->node_id));
  EXPECT_FALSE(ff.self_mhp(recv->node_id));
}

// ---------------------------------------------------------------------------
// Interprocedural contexts.

TEST(MhpInterprocedural, ContextLocksReachCallees) {
  const auto result = analyze_source(R"(
void helper() {
  MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
}
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical(net)
    { helper(); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  ASSERT_NE(send, nullptr);
  EXPECT_TRUE(send->in_parallel);
  EXPECT_EQ(send->locks.count("net"), 1u)
      << "caller-held critical lock must flow into the callee";
  EXPECT_TRUE(send->pruned);
  EXPECT_NE(send->prune_reason.find("critical-guarded"), std::string::npos)
      << send->prune_reason;
}

TEST(MhpInterprocedural, MasterContextReachesCallees) {
  const auto result = analyze_source(R"(
void reduce_step() {
  MPI_Allreduce(&a, &b, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
}
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_FUNNELED, &provided);
  #pragma omp parallel
  {
    #pragma omp master
    { reduce_step(); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* site = find_site(result, "MPI_Allreduce");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->in_master);
  EXPECT_TRUE(site->pruned);
  EXPECT_NE(site->prune_reason.find("master"), std::string::npos)
      << site->prune_reason;

  const auto warnings = diagnose(result);
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(MhpInterprocedural, MutualRecursionConverges) {
  const auto result = analyze_source(R"(
void ping(int n) {
  if (n > 0) { pong(n); }
  MPI_Send(&a, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
}
void pong(int n) {
  ping(n - 1);
}
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  { ping(3); }
  MPI_Finalize();
  return 0;
}
)");
  ASSERT_EQ(result.facts.contexts.count("ping"), 1u);
  ASSERT_EQ(result.facts.contexts.count("pong"), 1u);
  EXPECT_TRUE(result.facts.contexts.at("ping").recursive);
  EXPECT_TRUE(result.facts.contexts.at("pong").recursive);
  EXPECT_TRUE(result.facts.contexts.at("ping").may_parallel);

  const MpiCallSite* send = find_site(result, "MPI_Send");
  ASSERT_NE(send, nullptr);
  EXPECT_TRUE(send->in_parallel);
  EXPECT_FALSE(send->pruned) << send->prune_reason;
  EXPECT_EQ(result.plan.instrument.count(send->label), 1u);
}

TEST(MhpInterprocedural, RecursionUnderCriticalKeepsEntryLock) {
  // rec() is reachable only through the critical(net) call site (including
  // through its own self-call), so the entry-lock meet over the cycle must
  // converge to {net} and the send is provably guarded.
  const auto result = analyze_source(R"(
void rec(int n) {
  MPI_Send(&a, 1, MPI_INT, 1, 2, MPI_COMM_WORLD);
  if (n > 0) { rec(n - 1); }
}
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical(net)
    { rec(3); }
  }
  MPI_Finalize();
  return 0;
}
)");
  ASSERT_EQ(result.facts.contexts.count("rec"), 1u);
  EXPECT_TRUE(result.facts.contexts.at("rec").recursive);

  const MpiCallSite* send = find_site(result, "MPI_Send");
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->locks.count("net"), 1u);
  EXPECT_TRUE(send->pruned);
  EXPECT_NE(send->prune_reason.find("critical-guarded"), std::string::npos)
      << send->prune_reason;
}

// ---------------------------------------------------------------------------
// Unnamed criticals (one global lock per the OpenMP spec).

TEST(UnnamedCritical, TwoUnnamedRegionsShareOneLock) {
  const auto result = analyze_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Irecv(&buf, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, &req);
  #pragma omp parallel
  {
    #pragma omp critical
    { MPI_Wait(&req, MPI_STATUS_IGNORE); }
    #pragma omp critical
    { MPI_Test(&req, &flag, MPI_STATUS_IGNORE); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* wait = find_site(result, "MPI_Wait");
  const MpiCallSite* test = find_site(result, "MPI_Test");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(test, nullptr);

  EXPECT_EQ(wait->locks.count(kUnnamedCriticalLock), 1u);
  EXPECT_EQ(test->locks.count(kUnnamedCriticalLock), 1u);
  ASSERT_FALSE(wait->critical_stack.empty());
  EXPECT_EQ(wait->critical_stack.back(), kUnnamedCriticalLock);

  // Same canonical lock on both sides ⇒ serialized, pruned, and no
  // concurrent-request warning on the shared request.
  const FunctionFacts& ff = facts_of(result, *wait);
  EXPECT_TRUE(ff.mhp(wait->node_id, test->node_id))
      << "distinct criticals are still MHP...";
  EXPECT_FALSE(ff.mhp_unguarded(wait->node_id, test->node_id))
      << "...but the shared unnamed lock serializes them";
  EXPECT_TRUE(wait->pruned);
  EXPECT_TRUE(test->pruned);

  const auto warnings = diagnose(result);
  EXPECT_FALSE(has_class(warnings, WarningClass::kConcurrentRequest))
      << warnings_dump(warnings);
}

// ---------------------------------------------------------------------------
// Plan pruning.

TEST(PlanPruning, BarrierSeparatedSitesArePruned) {
  const auto result = analyze_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp single
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
    #pragma omp single
    { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(send->pruned);
  EXPECT_TRUE(recv->pruned);
  // The implied barrier of the first single is the strongest proof and must
  // win the reason attribution over the single construct itself.
  EXPECT_EQ(send->prune_reason, "barrier-separated") << send->prune_reason;
  EXPECT_EQ(result.plan.instrumented_calls, 0u);
  EXPECT_EQ(result.plan.pruned_calls, 2u);
  EXPECT_EQ(result.plan.pruned.count(send->label), 1u);
}

TEST(PlanPruning, FunneledPrunesOnlyMasterSites) {
  // The barrier separates the two sites, so each is individually race-free;
  // under FUNNELED only the *master* one may be pruned — a single still runs
  // on an arbitrary thread, which FUNNELED does not permit.
  const auto result = analyze_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_FUNNELED, &provided);
  #pragma omp parallel
  {
    #pragma omp master
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
    #pragma omp barrier
    #pragma omp single
    { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  const MpiCallSite* recv = find_site(result, "MPI_Recv");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(send->pruned) << "race-free master site is safe under FUNNELED";
  EXPECT_FALSE(recv->pruned)
      << "a single is NOT the master thread — under FUNNELED it stays "
         "instrumented (and warned about)";
}

TEST(PlanPruning, FunneledMasterWithRacingPeerStaysInstrumented) {
  // Without the barrier the single-recv may run concurrently with the
  // master-send on another thread — the master site is no longer provably
  // safe and must stay instrumented.
  const auto result = analyze_source(R"(
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_FUNNELED, &provided);
  #pragma omp parallel
  {
    #pragma omp master
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
    #pragma omp single nowait
    { MPI_Recv(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, &st); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  ASSERT_NE(send, nullptr);
  EXPECT_FALSE(send->pruned);
}

TEST(PlanPruning, PlainInitNeverPrunes) {
  const auto result = analyze_source(R"(
int main() {
  MPI_Init(0, 0);
  #pragma omp parallel
  {
    #pragma omp critical(net)
    { MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD); }
  }
  MPI_Finalize();
  return 0;
}
)");
  const MpiCallSite* send = find_site(result, "MPI_Send");
  ASSERT_NE(send, nullptr);
  // MPI_THREAD_SINGLE promises nothing — even a critical-guarded site must
  // stay instrumented.
  EXPECT_FALSE(send->pruned);
  EXPECT_EQ(result.plan.pruned_calls, 0u);
}

// ---------------------------------------------------------------------------
// Randomized consistency: facts vs brute-force path enumeration.

struct PathObs {
  std::vector<std::set<std::string>> lock_sets;
  std::vector<int> barrier_counts;
};

bool implied_barrier_node(const CfgNode& node) {
  if (node.kind == CfgNodeKind::kOmpBarrier) return true;
  if (node.kind != CfgNodeKind::kOmpWorksharingEnd) return false;
  if (node.label != "for" && node.label != "sections" &&
      node.label != "single") {
    return false;
  }
  return node.stmt == nullptr || node.stmt->clauses.count("nowait") == 0;
}

/// DFS over the CFG with a per-node revisit cap, recording the in-state
/// (held locks, barriers crossed since region entry) at every node reached
/// while inside the parallel region.  Mirrors the dataflow transfer
/// functions exactly: locks change on the way OUT of critical begin/end
/// nodes, the barrier count increments on the way OUT of barrier nodes.
void enumerate_paths(const Cfg& cfg, int node, std::vector<int>& visits,
                     const std::set<std::string>& locks, int barriers,
                     bool in_region, std::map<int, PathObs>& obs,
                     long& budget) {
  if (budget-- <= 0) return;
  if (visits[static_cast<std::size_t>(node)] >= 3) return;
  ++visits[static_cast<std::size_t>(node)];

  const CfgNode& n = cfg.node(node);
  if (in_region) {
    obs[node].lock_sets.push_back(locks);
    obs[node].barrier_counts.push_back(barriers);
  }

  bool next_in_region = in_region;
  int next_barriers = barriers;
  std::set<std::string> next_locks = locks;
  switch (n.kind) {
    case CfgNodeKind::kOmpParallelBegin:
      next_in_region = true;
      next_barriers = 0;
      break;
    case CfgNodeKind::kOmpParallelEnd:
      next_in_region = false;
      break;
    case CfgNodeKind::kOmpCriticalBegin:
      next_locks.insert(canonical_critical_name(n.label));
      break;
    case CfgNodeKind::kOmpCriticalEnd:
      next_locks.erase(canonical_critical_name(n.label));
      break;
    default:
      break;
  }
  if (in_region && implied_barrier_node(n)) ++next_barriers;

  for (int succ : n.succs) {
    enumerate_paths(cfg, succ, visits, next_locks, next_barriers,
                    next_in_region, obs, budget);
  }
  --visits[static_cast<std::size_t>(node)];
}

/// Random structured body: plain statements, MPI calls, barriers, criticals
/// (named and unnamed), singles (with/without nowait), if/else, and — when
/// `allow_loops` — while loops.
std::string gen_block(util::Rng& rng, int depth, bool allow_loops) {
  std::ostringstream os;
  const int items = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < items; ++i) {
    const int max_kind = depth >= 3 ? 3 : (allow_loops ? 7 : 6);
    switch (rng.next_below(static_cast<std::uint64_t>(max_kind))) {
      case 0:
        os << "a = a + 1;\n";
        break;
      case 1:
        os << "#pragma omp barrier\n";
        break;
      case 2:
        os << "MPI_Send(&a, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);\n";
        break;
      case 3: {
        const std::uint64_t lock = rng.next_below(3);
        if (lock == 2) {
          os << "#pragma omp critical\n";
        } else {
          os << "#pragma omp critical(l" << lock << ")\n";
        }
        os << "{\n" << gen_block(rng, depth + 1, allow_loops) << "}\n";
        break;
      }
      case 4:
        os << "#pragma omp single" << (rng.next_bool() ? " nowait" : "")
           << "\n{\n" << gen_block(rng, depth + 1, allow_loops) << "}\n";
        break;
      case 5:
        os << "if (a > " << rng.next_below(10) << ") {\n"
           << gen_block(rng, depth + 1, allow_loops) << "}";
        if (rng.next_bool()) {
          os << " else {\n" << gen_block(rng, depth + 1, allow_loops) << "}";
        }
        os << "\n";
        break;
      default:
        os << "while (a < " << rng.next_below(10) << ") {\n"
           << gen_block(rng, depth + 1, allow_loops) << "}\n";
        break;
    }
  }
  return os.str();
}

std::string gen_program(util::Rng& rng, bool allow_loops) {
  return "void kernel() {\n#pragma omp parallel\n{\n" +
         gen_block(rng, 1, allow_loops) + "}\n}\n";
}

/// Checks the engine's facts for one random program against brute-force
/// enumeration.  `exact` additionally requires equality (valid for loop-free
/// programs, where the enumeration covers every path).
void check_against_enumeration(const std::string& source, bool exact) {
  SCOPED_TRACE(source);
  TranslationUnit unit = parse(source);
  ASSERT_TRUE(unit.errors.empty()) << util::join(unit.errors, "; ");
  ASSERT_EQ(unit.functions.size(), 1u);

  std::vector<Cfg> cfgs;
  cfgs.push_back(build_cfg(unit.functions[0]));
  const ProgramFacts pf = compute_program_facts(unit, cfgs);
  const Cfg& cfg = cfgs[0];
  const FunctionFacts& ff = pf.functions.at(0);

  int region = -1;
  for (const CfgNode& n : cfg.nodes()) {
    if (n.kind == CfgNodeKind::kOmpParallelBegin) region = n.id;
  }
  ASSERT_GE(region, 0);

  std::map<int, PathObs> obs;
  std::vector<int> visits(cfg.nodes().size(), 0);
  long budget = 2000000;
  enumerate_paths(cfg, cfg.entry(), visits, {}, 0, false, obs, budget);
  ASSERT_GT(budget, 0) << "enumeration budget exhausted — shrink generator";

  for (const auto& [node, seen] : obs) {
    const NodeFacts& nf = ff.at(node);
    EXPECT_TRUE(nf.reachable) << "node " << node << " observed on a path";

    // Must-locks ⊆ every observed lock set; exact = equals the intersection.
    std::set<std::string> intersection = seen.lock_sets.front();
    for (const auto& path_locks : seen.lock_sets) {
      EXPECT_TRUE(std::includes(path_locks.begin(), path_locks.end(),
                                nf.locks.begin(), nf.locks.end()))
          << "node " << node << ": computed must-lockset not held on a path";
      std::set<std::string> next;
      std::set_intersection(intersection.begin(), intersection.end(),
                            path_locks.begin(), path_locks.end(),
                            std::inserter(next, next.begin()));
      intersection = std::move(next);
    }
    if (exact) {
      EXPECT_EQ(nf.locks, intersection) << "node " << node;
    }

    // Every observed barrier count lies inside the phase interval; exact =
    // the interval is tight.
    const auto phase_it = nf.phases.find(region);
    if (phase_it == nf.phases.end()) continue;
    const PhaseInterval& pi = phase_it->second;
    int lo = seen.barrier_counts.front(), hi = seen.barrier_counts.front();
    for (int c : seen.barrier_counts) {
      EXPECT_GE(c, pi.min) << "node " << node;
      if (!pi.unbounded) EXPECT_LE(c, pi.max) << "node " << node;
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    if (exact) {
      EXPECT_EQ(pi.min, lo) << "node " << node;
      EXPECT_FALSE(pi.unbounded) << "node " << node;
      EXPECT_EQ(pi.max, hi) << "node " << node;
    }
  }
}

TEST(MhpRandomized, LoopFreeFactsAreExact) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    check_against_enumeration(gen_program(rng, /*allow_loops=*/false),
                              /*exact=*/true);
  }
}

TEST(MhpRandomized, LoopyFactsStayConservative) {
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    util::Rng rng(seed);
    check_against_enumeration(gen_program(rng, /*allow_loops=*/true),
                              /*exact=*/false);
  }
}

// ---------------------------------------------------------------------------
// Anticipation: every seeded dynamic violation class of
// tests/home_integration_test.cpp has a source-level analogue the static
// engine must warn about; each repaired twin must yield zero definite
// warnings.

TEST(Anticipation, PlainInitWithParallelMpi) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init(&argc, &argv);
  #pragma omp parallel
  { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kInitialization))
      << warnings_dump(warnings);
}

TEST(Anticipation, FunneledNonMasterSend) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_FUNNELED, &provided);
  #pragma omp parallel
  { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_class(warnings, WarningClass::kInitialization))
      << warnings_dump(warnings);
}

TEST(Anticipation, FunneledMasterOnlyIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_FUNNELED, &provided);
  #pragma omp parallel
  {
    #pragma omp master
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, SerializedConcurrentCalls) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_SERIALIZED, &provided);
  #pragma omp parallel
  { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_class(warnings, WarningClass::kInitialization))
      << warnings_dump(warnings);
}

TEST(Anticipation, SerializedCriticalGuardedIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_SERIALIZED, &provided);
  #pragma omp parallel
  {
    #pragma omp critical(mpi)
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, FinalizeConcurrentWithSend) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);
    MPI_Finalize();
  }
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kFinalization))
      << warnings_dump(warnings);
}

TEST(Anticipation, FinalizeAfterJoinIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical(net)
    { MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD); }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_FALSE(has_class(warnings, WarningClass::kFinalization))
      << warnings_dump(warnings);
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, ConcurrentRecvSameSourceAndTag) {
  // Figure 2 of the paper: the whole team posts identical receives.
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  { MPI_Recv(&b, 1, MPI_INT, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kConcurrentRecv))
      << warnings_dump(warnings);
}

TEST(Anticipation, ThreadDependentTagDemotesSeverity) {
  // The repaired Figure-2 program: per-thread tags.  "Same tag" reasoning
  // no longer holds, so no definite warning may survive.
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    int tag = omp_get_thread_num();
    MPI_Recv(&b, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, SharedRequestWaitedByTeam) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  MPI_Irecv(&buf, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, &req);
  #pragma omp parallel
  { MPI_Wait(&req, MPI_STATUS_IGNORE); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kConcurrentRequest))
      << warnings_dump(warnings);
}

TEST(Anticipation, SingleGuardedWaitIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  MPI_Irecv(&buf, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, &req);
  #pragma omp parallel
  {
    #pragma omp single
    { MPI_Wait(&req, MPI_STATUS_IGNORE); }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_FALSE(has_class(warnings, WarningClass::kConcurrentRequest))
      << warnings_dump(warnings);
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, ProbeRecvRace) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    MPI_Probe(0, 9, MPI_COMM_WORLD, &st);
    MPI_Recv(&a, 1, MPI_INT, 0, 9, MPI_COMM_WORLD, &st);
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kProbe))
      << warnings_dump(warnings);
}

TEST(Anticipation, CriticalGuardedProbeRecvIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical(probe)
    {
      MPI_Probe(0, 9, MPI_COMM_WORLD, &st);
      MPI_Recv(&a, 1, MPI_INT, 0, 9, MPI_COMM_WORLD, &st);
    }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_FALSE(has_class(warnings, WarningClass::kProbe))
      << warnings_dump(warnings);
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

TEST(Anticipation, TeamExecutedCollective) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  { MPI_Barrier(MPI_COMM_WORLD); }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_TRUE(has_definite(warnings, WarningClass::kCollectiveCall))
      << warnings_dump(warnings);
}

TEST(Anticipation, SingleGuardedCollectiveIsClean) {
  const auto warnings = diagnose_source(R"(
int main() {
  MPI_Init_thread(&argc, &argv, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp single
    { MPI_Barrier(MPI_COMM_WORLD); }
  }
  MPI_Finalize();
  return 0;
}
)");
  EXPECT_FALSE(has_class(warnings, WarningClass::kCollectiveCall))
      << warnings_dump(warnings);
  EXPECT_EQ(definite_count(warnings), 0u) << warnings_dump(warnings);
}

}  // namespace
