// Tests of the wait-for-graph deadlock detection: the pure algorithm plus
// online diagnosis of real hangs in the substrate.
#include <gtest/gtest.h>

#include "src/detect/deadlock.hpp"
#include "src/home/deadlock_monitor.hpp"
#include "src/simmpi/universe.hpp"

namespace home {
namespace {

using detect::WaitForGraph;
using namespace simmpi;

// ------------------------------------------------------------ WaitForGraph

TEST(WaitForGraph, EmptyHasNoCycle) {
  WaitForGraph graph;
  EXPECT_TRUE(graph.empty());
  EXPECT_FALSE(graph.has_cycle());
}

TEST(WaitForGraph, ChainHasNoCycle) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  graph.add_wait(1, 2);
  graph.add_wait(2, 3);
  EXPECT_FALSE(graph.has_cycle());
}

TEST(WaitForGraph, TwoCycleDetected) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  graph.add_wait(1, 0);
  auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<int>{0, 1}));
}

TEST(WaitForGraph, SelfLoopDetected) {
  WaitForGraph graph;
  graph.add_wait(3, 3);
  auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<int>{3}));
}

TEST(WaitForGraph, LongCycleDetected) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  graph.add_wait(1, 2);
  graph.add_wait(2, 3);
  graph.add_wait(3, 0);
  auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(WaitForGraph, TwoIndependentCycles) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  graph.add_wait(1, 0);
  graph.add_wait(5, 6);
  graph.add_wait(6, 5);
  graph.add_wait(2, 0);  // a waiter outside any cycle.
  auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cycles[1], (std::vector<int>{5, 6}));
}

TEST(WaitForGraph, ClearWaiterBreaksCycle) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  graph.add_wait(1, 0);
  graph.clear_waiter(1);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_EQ(graph.waitees_of(0), (std::set<int>{1}));
  EXPECT_TRUE(graph.waitees_of(1).empty());
}

TEST(WaitForGraph, DumpsEdges) {
  WaitForGraph graph;
  graph.add_wait(0, 1);
  EXPECT_NE(graph.to_string().find("0 -> 1"), std::string::npos);
}

TEST(WaitForGraph, EdgesCarryEpochStamps) {
  WaitForGraph graph;
  graph.add_wait(0, 1, detect::WaitStamp{0, 7});
  EXPECT_EQ(graph.stamp_of(0, 1).rank, 0);
  EXPECT_EQ(graph.stamp_of(0, 1).value, 7u);
  // Default stamp: epoch 0, rank inferred from the waiter.
  graph.add_wait(2, 3);
  EXPECT_EQ(graph.stamp_of(2, 3).rank, 2);
  EXPECT_EQ(graph.stamp_of(2, 3).value, 0u);
  // Absent edge reads as the sentinel stamp.
  EXPECT_EQ(graph.stamp_of(5, 6).rank, -1);
  // Re-adding the edge updates the stamp (latest blocking call wins).
  graph.add_wait(0, 1, detect::WaitStamp{0, 9});
  EXPECT_EQ(graph.stamp_of(0, 1).value, 9u);
  EXPECT_NE(graph.to_string().find("1@e9"), std::string::npos);
}

TEST(WaitForGraph, StampsSurviveCycleDetection) {
  WaitForGraph graph;
  graph.add_wait(0, 1, detect::WaitStamp{0, 3});
  graph.add_wait(1, 0, detect::WaitStamp{1, 5});
  auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(graph.stamp_of(0, 1).value, 3u);
  EXPECT_EQ(graph.stamp_of(1, 0).value, 5u);
}

// -------------------------------------------------------- DeadlockMonitor

UniverseConfig short_timeout(int nranks) {
  UniverseConfig cfg;
  cfg.nranks = nranks;
  cfg.block_timeout_ms = 100;
  return cfg;
}

TEST(DeadlockMonitor, DiagnosesMutualRecvDeadlock) {
  // Classic head-to-head: both ranks recv before sending.
  DeadlockMonitor monitor(2);
  Universe uni(short_timeout(2));
  uni.hooks().add(&monitor);
  auto result = uni.run([&](Process& p) {
    int v = 0;
    const int peer = 1 - p.rank();
    p.recv(&v, 1, Datatype::kInt, peer, 0, kCommWorld);  // never satisfied.
    p.send(&v, 1, Datatype::kInt, peer, 0, kCommWorld);
  });
  EXPECT_FALSE(result.ok());
  auto cycles = monitor.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<int>{0, 1}));
  EXPECT_NE(monitor.diagnose().find("rank 0"), std::string::npos);
  // The diagnosis names each waiter's call epoch (the scalar edge stamps):
  // the stuck recv is each rank's very first call, so both block at epoch 0.
  EXPECT_NE(monitor.diagnose().find("epoch 0"), std::string::npos);
  EXPECT_EQ(monitor.epoch_of(0), 0u);
  EXPECT_EQ(monitor.epoch_of(1), 0u);
}

TEST(DeadlockMonitor, DiagnosesRendezvousSendCycle) {
  UniverseConfig cfg = short_timeout(2);
  cfg.rendezvous_sends = true;
  DeadlockMonitor monitor(2);
  Universe uni(cfg);
  uni.hooks().add(&monitor);
  auto result = uni.run([&](Process& p) {
    // Both ranks ssend first: rendezvous head-to-head.
    int v = p.rank();
    const int peer = 1 - p.rank();
    p.send(&v, 1, Datatype::kInt, peer, 0, kCommWorld);
    p.recv(&v, 1, Datatype::kInt, peer, 0, kCommWorld);
  });
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(monitor.cycles().empty());
}

TEST(DeadlockMonitor, CleanExchangeLeavesNoCycle) {
  DeadlockMonitor monitor(2);
  Universe uni(short_timeout(2));
  uni.hooks().add(&monitor);
  auto result = uni.run([&](Process& p) {
    int v = p.rank();
    const int peer = 1 - p.rank();
    p.send(&v, 1, Datatype::kInt, peer, 0, kCommWorld);
    p.recv(&v, 1, Datatype::kInt, peer, 0, kCommWorld);
    p.barrier(kCommWorld);
  });
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(monitor.cycles().empty());
  EXPECT_EQ(monitor.diagnose(), "no wait cycle observed");
  // Each completed call advanced the rank's epoch counter (send + recv +
  // barrier = 3 blocking-capable calls per rank).
  EXPECT_GE(monitor.epoch_of(0), 3u);
  EXPECT_GE(monitor.epoch_of(1), 3u);
}

TEST(DeadlockMonitor, MissingCollectiveParticipantDiagnosed) {
  DeadlockMonitor monitor(3);
  Universe uni(short_timeout(3));
  uni.hooks().add(&monitor);
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 2) return;  // rank 2 never joins the barrier.
    p.barrier(kCommWorld);
  });
  EXPECT_FALSE(result.ok());
  // Ranks 0 and 1 wait on everyone, including each other: a cycle exists.
  EXPECT_FALSE(monitor.cycles().empty());
}

TEST(DeadlockMonitor, WildcardRecvWaitsOnEveryone) {
  DeadlockMonitor monitor(3);
  Universe uni(short_timeout(3));
  uni.hooks().add(&monitor);
  auto result = uni.run([&](Process& p) {
    if (p.rank() == 0) {
      int v;
      p.recv(&v, 1, Datatype::kInt, kAnySource, kAnyTag, kCommWorld);
    }
  });
  EXPECT_FALSE(result.ok());  // rank 0 times out.
  // Not a cycle (1-directional wait), but the graph recorded the fan-out.
  EXPECT_TRUE(monitor.cycles().empty());
}

}  // namespace
}  // namespace home
