// Offline-analysis workflow: run a buggy hybrid program once recording its
// execution log, save the trace to disk, then re-run the detection +
// matching pipeline from the file — the paper's offline analysis mode, and a
// convenient way to archive and triage violating runs.
//
//   ./trace_replay [--trace=/tmp/home_trace.txt]
#include <cstdio>

#include "src/home/check.hpp"
#include "src/home/session.hpp"
#include "src/homp/runtime.hpp"
#include "src/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace home;
  using namespace home::simmpi;
  const auto flags = home::util::Flags::parse(argc, argv);
  const std::string path = flags.get("trace", "/tmp/home_trace.txt");

  // Phase 1: record. The program is Figure 2's shared-tag ping-pong.
  Session session;
  UniverseConfig ucfg;
  ucfg.nranks = 2;
  session.configure(ucfg);
  Universe universe(ucfg);
  session.attach(universe);
  homp::set_default_threads(2);
  universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = homp::thread_num();
      if (p.rank() == 0) {
        p.send(&a, 1, Datatype::kInt, 1, 0, kCommWorld, {"replay.send0"});
        p.recv(&a, 1, Datatype::kInt, 1, 0, kCommWorld, nullptr,
               {"replay.recv0"});
      } else {
        p.recv(&a, 1, Datatype::kInt, 0, 0, kCommWorld, nullptr,
               {"replay.recv1"});
        p.send(&a, 1, Datatype::kInt, 0, 0, kCommWorld, {"replay.send1"});
      }
    });
    p.finalize();
  });
  session.detach(universe);
  session.save_trace(path);
  std::printf("recorded %zu events to %s\n", session.log().size(), path.c_str());

  // Phase 2: analyze live and from the file; results must agree.
  const Report live = session.analyze();
  const Report replayed = analyze_trace_file(path);

  std::printf("\n--- live analysis ---\n%s", live.to_string().c_str());
  std::printf("\n--- replayed from file ---\n%s", replayed.to_string().c_str());

  const bool ok = live.violations().size() == replayed.violations().size() &&
                  !replayed.clean();
  std::printf("\ntrace_replay: %s\n",
              ok ? "OK (offline analysis matches live)" : "UNEXPECTED");
  return ok ? 0 : 1;
}
