// schedule_hunter: hunt for schedule-dependent thread-safety violations.
//
// Sweeps N seeded schedules of the hidden-race corpus app (or an injection
// benchmark), reports the violations-vs-schedules coverage curve, and
// replays every exploration-only finding to confirm the recorded schedule
// reproduces the identical violation key set.
//
//   ./schedule_hunter [--app=hidden] [--schedules=64] [--strategy=wildcard]
//                     [--seed-base=1] [--schedule-dir=DIR]
//                     [--guidance=FILE] [--stop-on-first]
//                     [--expect-violation] [--no-replay-check]
//                     [--explain] [--paranoid] [--provenance-out=FILE]
//                     [--minimize] [--min-schedule-out=DIR]
//                     [--inject=SPEC] [--fault-seed=1] [--faultplan=FILE]
//                     [--schedule-timeout-ms=N] [--max-retries=N]
//                     [--retry-backoff-ms=N] [--quarantine-dir=DIR]
//                     [--journal=FILE] [--resume] [--wal=FILE]
//
// Resilience (ISSUE-10): --inject enables seeded fault injection
// (FaultSpec "key=value,..." — e.g. "crash=0.01,delay=0.2"); --faultplan
// replays a recorded *.faultplan instead; --schedule-timeout-ms arms a
// per-schedule watchdog, --max-retries re-runs hung/crashed schedules with
// backoff, and schedules that still fail are quarantined into
// --quarantine-dir with their reproduction artifacts.  --journal checkpoints
// every completed schedule; with --resume, a rerun replays journaled
// schedules instead of executing them (without --resume an existing journal
// is truncated).  --wal streams events to a crash-safe write-ahead log.
//
// Provenance: --explain prints each finding's explanation certificate
// (causal HB witness chains); --paranoid re-verifies every certificate via
// the independent replay oracle and fails the run on any mismatch;
// --minimize ddmin-minimizes each finding's schedule (--min-schedule-out
// saves the minimized logs; implies --minimize); --provenance-out writes
// the certificates as provenance JSON.
//
// --strategy=guided uses static guidance: --guidance loads a StaticGuidance
// file (static_analyzer_cli --emit-guidance); without one, --app=hidden
// derives guidance from the app's built-in static model (src/sast/commstat).
//
// Exit codes: 0 ok; 1 a replay failed to reproduce its finding, a
// certificate failed paranoid verification, a minimized schedule failed to
// reproduce, or --expect-violation was given but the sweep found nothing
// beyond the baseline; 2 usage error; 3 a schedule hit the watchdog timeout
// and stayed quarantined; 4 a schedule crashed through all retries (a crash
// outranks a timeout when both occurred).
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>

#include "src/apps/app.hpp"
#include "src/apps/hidden_race.hpp"
#include "src/diagnose/provenance.hpp"
#include "src/explore/guidance.hpp"
#include "src/explore/sweeper.hpp"
#include "src/faults/plan.hpp"
#include "src/sast/commstat.hpp"
#include "src/util/flags.hpp"

namespace {

using namespace home;

/// Parse the resilience flags (fault injection, watchdog/retry/quarantine,
/// journal, WAL) into the sweep config; false (reason printed) on malformed
/// --inject specs or unloadable --faultplan files.
bool apply_resilience_flags(const util::Flags& flags,
                            explore::SweepConfig* cfg) {
  const std::string inject = flags.get("inject", "");
  if (!inject.empty()) {
    faults::FaultSpec spec;
    if (!faults::FaultSpec::parse(inject, &spec)) {
      std::fprintf(stderr, "malformed --inject spec: %s\n", inject.c_str());
      return false;
    }
    cfg->session.faults.enabled = true;
    cfg->session.faults.spec = spec;
    cfg->session.faults.seed =
        static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  }
  const std::string plan_path = flags.get("faultplan", "");
  if (!plan_path.empty()) {
    auto plan = std::make_shared<faults::FaultPlan>();
    if (!faults::FaultPlan::load(plan_path, plan.get())) {
      std::fprintf(stderr, "cannot load faultplan %s\n", plan_path.c_str());
      return false;
    }
    cfg->session.faults.enabled = true;
    cfg->session.faults.replay = std::move(plan);
  }
  cfg->schedule_timeout_ms = flags.get_int("schedule-timeout-ms", 0);
  cfg->max_retries = flags.get_int("max-retries", 0);
  cfg->retry_backoff_ms = flags.get_int("retry-backoff-ms", 50);
  cfg->quarantine_dir = flags.get("quarantine-dir", "");
  cfg->session.wal_path = flags.get("wal", "");
  const std::string journal = flags.get("journal", "");
  if (!journal.empty()) {
    cfg->journal_path = journal;
    if (!flags.get_bool("resume", false)) {
      // Without --resume an existing journal describes a *previous* sweep:
      // start fresh rather than silently skipping its schedules.
      std::ofstream(journal, std::ios::trunc);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);

  const std::string app = flags.get("app", "hidden");
  explore::SweepConfig cfg;
  cfg.nthreads = flags.get_int("nthreads", 2);
  cfg.schedules = flags.get_int("schedules", 64);
  cfg.base_seed = static_cast<std::uint64_t>(flags.get_int("seed-base", 1));
  cfg.schedule_dir = flags.get("schedule-dir", "");
  cfg.stop_on_first_new = flags.get_bool("stop-on-first", false);
  cfg.diagnose.enabled = flags.get_bool("explain", false) ||
                         flags.get_bool("paranoid", false) ||
                         !flags.get("provenance-out", "").empty();
  cfg.diagnose.paranoid = flags.get_bool("paranoid", false);
  cfg.min_schedule_dir = flags.get("min-schedule-out", "");
  cfg.minimize =
      flags.get_bool("minimize", false) || !cfg.min_schedule_dir.empty();
  if (!explore::parse_strategy_kind(flags.get("strategy", "wildcard"),
                                    &cfg.strategy)) {
    std::fprintf(stderr,
                 "unknown --strategy (none|random|pct|delay|wildcard|"
                 "guided)\n");
    return 2;
  }
  if (!apply_resilience_flags(flags, &cfg)) return 2;

  const std::string guidance_path = flags.get("guidance", "");
  if (!guidance_path.empty()) {
    auto guidance = std::make_shared<explore::StaticGuidance>();
    if (!explore::StaticGuidance::load(guidance_path, guidance.get())) {
      std::fprintf(stderr, "cannot load guidance %s\n", guidance_path.c_str());
      return 2;
    }
    cfg.guidance = std::move(guidance);
  } else if (cfg.strategy == explore::StrategyKind::kGuided &&
             app == "hidden") {
    const sast::CommstatResult comm =
        sast::analyze_comm_source(apps::hidden_race_model_source());
    cfg.guidance = std::make_shared<explore::StaticGuidance>(comm.guidance);
    std::printf("derived guidance from static model: %zu ambiguous site(s), "
                "%zu ordered pair(s)\n",
                cfg.guidance->ambiguous.size(), cfg.guidance->ordered.size());
  }

  explore::Sweeper::RankMain rank_main;
  if (app == "hidden") {
    cfg.nranks = apps::kHiddenRaceRanks;
    rank_main = [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
  } else if (app == "lu" || app == "bt" || app == "sp") {
    const apps::AppKind kind = app == "bt" ? apps::AppKind::kBT
                               : app == "sp" ? apps::AppKind::kSP
                                             : apps::AppKind::kLU;
    cfg.nranks = flags.get_int("nranks", 2);
    const apps::AppConfig acfg =
        apps::paper_config(kind, cfg.nranks, cfg.nthreads);
    rank_main = [acfg](simmpi::Process& p) { apps::run_app_rank(acfg, p); };
  } else {
    std::fprintf(stderr, "unknown --app=%s (hidden|lu|bt|sp)\n", app.c_str());
    return 2;
  }

  explore::Sweeper sweeper(cfg);
  const explore::SweepResult result = sweeper.run(rank_main);
  std::printf("%s", result.to_string().c_str());
  if (result.first_new_schedule >= 0) {
    // Machine-parsed by CI's guided-vs-random gate; keep the format stable.
    std::printf("first exploration-only finding: schedule %d\n",
                result.first_new_schedule);
  }
  for (const std::string& err : result.run_errors) {
    std::fprintf(stderr, "run error: %s\n", err.c_str());
  }

  // Each failure mode is tracked separately so a replay failure cannot be
  // masked by a satisfied --expect-violation (and vice versa); any one
  // makes the exit code non-zero.
  int replay_failures = 0;
  bool expectation_failed = false;
  int minimize_failures = 0;
  const int certificate_failures =
      static_cast<int>(result.certificate_failures.size());

  if (cfg.diagnose.enabled) {
    diagnose::ProvenanceReport provenance;
    provenance.paranoid = cfg.diagnose.paranoid;
    provenance.verified = result.certificates_verified;
    provenance.verify_failures = result.certificate_failures;
    for (const explore::SweepFinding& f : result.findings) {
      if (f.certificate) provenance.certificates.push_back(*f.certificate);
    }
    if (flags.get_bool("explain", false) || cfg.diagnose.paranoid) {
      std::printf("%s", provenance.to_string().c_str());
    }
    const std::string out = flags.get("provenance-out", "");
    if (!out.empty()) {
      diagnose::write_provenance_json(out, provenance);
      std::printf("provenance written to %s\n", out.c_str());
    }
    if (certificate_failures > 0) {
      std::fprintf(stderr, "%d certificate(s) failed paranoid verification\n",
                   certificate_failures);
    }
  }

  if (cfg.minimize) {
    // Every exploration-only finding's minimized schedule must itself have
    // replayed to the same violation key during ddmin.
    for (const explore::SweepFinding& f : result.findings) {
      if (f.schedule_index < 0 || f.in_baseline || f.schedule.empty()) continue;
      if (!f.minimized_verified) ++minimize_failures;
    }
    if (minimize_failures > 0) {
      std::fprintf(stderr,
                   "%d minimized schedule(s) failed to reproduce their "
                   "finding\n",
                   minimize_failures);
    }
  }

  if (flags.get_bool("replay-check", true)) {
    // Determinism gate: every exploration-only finding's schedule must
    // reproduce the finding on replay.
    for (const explore::SweepFinding& f : result.findings) {
      if (f.schedule_index < 0 || f.in_baseline) continue;
      if (f.schedule.empty()) {
        // A journal-resumed finding whose schedule artifact was never
        // persisted (no --schedule-dir on the original sweep) has nothing
        // to replay; say so instead of failing a vacuous replay.
        std::printf("replay seed %llu: %s SKIPPED (no recorded schedule; "
                    "rerun with --schedule-dir to keep replay artifacts)\n",
                    static_cast<unsigned long long>(f.seed), f.key.c_str());
        continue;
      }
      // A fault-sweep finding only reproduces under its own fault plan.
      const faults::FaultPlan* fp =
          cfg.session.faults.enabled ? &f.faultplan : nullptr;
      const std::set<std::string> keys =
          sweeper.replay(f.schedule, rank_main, fp);
      const bool reproduced = keys.count(f.key) > 0;
      std::printf("replay seed %llu: %s %s\n",
                  static_cast<unsigned long long>(f.seed), f.key.c_str(),
                  reproduced ? "REPRODUCED" : "NOT REPRODUCED");
      if (!reproduced) ++replay_failures;
    }
    if (replay_failures > 0) {
      std::fprintf(stderr, "%d replay(s) failed to reproduce their finding\n",
                   replay_failures);
    }
  }

  if (flags.get_bool("expect-violation", false) &&
      result.new_vs_baseline() == 0) {
    std::fprintf(stderr,
                 "expected an exploration-only violation; none found in %d "
                 "schedule(s)\n",
                 result.schedules_run);
    expectation_failed = true;
  }

  if (replay_failures > 0 || expectation_failed || certificate_failures > 0 ||
      minimize_failures > 0) {
    return 1;
  }
  // Quarantine outcomes surface through dedicated exit codes so CI can tell
  // "the sweep found nothing" from "the sweep could not finish cleanly";
  // a crash outranks a timeout when both occurred.
  if (result.crashes > 0) return 4;
  if (result.timeouts > 0) return 3;
  return 0;
}
