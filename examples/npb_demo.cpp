// Run an NPB-MZ-style mini-app with the paper's injected violations under
// all four tool configurations and print the comparison — a miniature of the
// Section V evaluation.
//
//   ./npb_demo [--app=lu|bt|sp] [--nranks=4] [--nthreads=2]
#include <cstdio>
#include <string>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace home::apps;
  const auto flags = home::util::Flags::parse(argc, argv);

  const std::string app = flags.get("app", "lu");
  AppKind kind = AppKind::kLU;
  if (app == "bt") kind = AppKind::kBT;
  if (app == "sp") kind = AppKind::kSP;

  const int nranks = flags.get_int("nranks", 4);
  const int nthreads = flags.get_int("nthreads", 2);
  AppConfig cfg = paper_config(kind, nranks, nthreads);

  std::printf("=== %s, %d ranks x %d threads, 6 injected violations ===\n",
              app_kind_name(kind), nranks, nthreads);

  for (Tool tool : {Tool::kBase, Tool::kHome, Tool::kMarmot, Tool::kItc}) {
    const ToolRunResult result = run_with_tool(tool, cfg);
    if (tool == Tool::kBase) {
      std::printf("%-8s runtime %.3fs (no checking)\n", tool_name(tool),
                  result.run_seconds);
      continue;
    }
    const AccuracyCount acc = count_accuracy(result.report);
    std::printf("%-8s runtime %.3fs  detected %d/6 classes, %d extra -> table value %d\n",
                tool_name(tool), result.run_seconds, acc.detected_classes,
                acc.extra_reports, acc.table_value());
    if (tool == Tool::kHome) {
      std::printf("\n--- HOME's report ---\n%s\n", result.report.to_string().c_str());
    }
  }
  return 0;
}
