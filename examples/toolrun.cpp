// toolrun: run a corpus app under a tool configuration, optionally under the
// controlled-schedule explorer.
//
//   Single run:    ./toolrun --app=lu --tool=home --nranks=2 --nthreads=2
//   Exploration:   ./toolrun --app=hidden --explore=64 --strategy=wildcard
//                            [--seed-base=1] [--schedule-dir=schedules]
//                            [--guidance=FILE] [--stop-on-first]
//   Replay:        ./toolrun --app=hidden --replay=schedules/seed5.schedule
//                            [--faultplan=schedules/seed5.faultplan]
//
// Resilience (ISSUE-10; all modes with --tool=home):
//   --inject=SPEC         seeded fault injection (FaultSpec "key=value,...",
//                         e.g. "crash=0.01,delay=0.2"); --fault-seed=N
//   --faultplan=FILE      replay a recorded *.faultplan instead
//   --wal=FILE            stream events to a crash-safe write-ahead log
//   Exploration only: --schedule-timeout-ms=N --max-retries=N
//   --retry-backoff-ms=N --quarantine-dir=DIR --journal=FILE --resume
//
// Provenance (single runs with --tool=home, and exploration):
//   --explain             print the explanation certificate of every finding
//   --paranoid            re-verify each certificate (implies --explain)
//   --provenance-out=FILE write certificates as provenance JSON
//   --min-schedule-out=DIR ddmin-minimize each finding's schedule into DIR
//                          (exploration only; directory must exist)
//
// --strategy=guided uses the static-guidance strategy; --guidance loads the
// StaticGuidance file (static_analyzer_cli --emit-guidance), enabling the
// sweeper's fingerprint pruning with surfaced reasons.  For --app=hidden
// with no --guidance file, guidance is derived from the app's built-in
// static model.
//
// Apps: lu | bt | sp (paper injection configs; --clean disables injections)
//       and hidden (the wildcard-gated hidden-race corpus program).
// Exploration always analyzes with HOME; --tool selects the baseline tool
// for single runs only.
#include <cstdio>
#include <fstream>
#include <string>

#include <memory>

#include "src/apps/app.hpp"
#include "src/apps/hidden_race.hpp"
#include "src/apps/toolrun.hpp"
#include "src/explore/guidance.hpp"
#include "src/explore/sweeper.hpp"
#include "src/faults/plan.hpp"
#include "src/sast/commstat.hpp"
#include "src/spec/violations.hpp"
#include "src/util/flags.hpp"

namespace {

using namespace home;

struct AppChoice {
  std::string name;
  int nranks = 2;
  int nthreads = 2;
  explore::Sweeper::RankMain rank_main;
};

/// Parse --inject / --fault-seed / --faultplan / --wal into a SessionConfig;
/// false (reason printed) on malformed specs or unloadable plans.
bool apply_fault_flags(const util::Flags& flags, SessionConfig* scfg) {
  const std::string inject = flags.get("inject", "");
  if (!inject.empty()) {
    faults::FaultSpec spec;
    if (!faults::FaultSpec::parse(inject, &spec)) {
      std::fprintf(stderr, "malformed --inject spec: %s\n", inject.c_str());
      return false;
    }
    scfg->faults.enabled = true;
    scfg->faults.spec = spec;
    scfg->faults.seed =
        static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  }
  const std::string plan_path = flags.get("faultplan", "");
  if (!plan_path.empty()) {
    auto plan = std::make_shared<faults::FaultPlan>();
    if (!faults::FaultPlan::load(plan_path, plan.get())) {
      std::fprintf(stderr, "cannot load faultplan %s\n", plan_path.c_str());
      return false;
    }
    scfg->faults.enabled = true;
    scfg->faults.replay = std::move(plan);
  }
  scfg->wal_path = flags.get("wal", "");
  return true;
}

/// The exploration-only resilience knobs on top of apply_fault_flags.
bool apply_resilience_flags(const util::Flags& flags,
                            explore::SweepConfig* cfg) {
  if (!apply_fault_flags(flags, &cfg->session)) return false;
  cfg->schedule_timeout_ms = flags.get_int("schedule-timeout-ms", 0);
  cfg->max_retries = flags.get_int("max-retries", 0);
  cfg->retry_backoff_ms = flags.get_int("retry-backoff-ms", 50);
  cfg->quarantine_dir = flags.get("quarantine-dir", "");
  const std::string journal = flags.get("journal", "");
  if (!journal.empty()) {
    cfg->journal_path = journal;
    if (!flags.get_bool("resume", false)) {
      // Without --resume an existing journal describes a *previous* sweep:
      // start fresh rather than silently skipping its schedules.
      std::ofstream(journal, std::ios::trunc);
    }
  }
  return true;
}

bool diagnose_requested(const util::Flags& flags) {
  return flags.get_bool("explain", false) || flags.get_bool("paranoid", false) ||
         !flags.get("provenance-out", "").empty();
}

void apply_diagnose_flags(const util::Flags& flags, explore::SweepConfig* cfg) {
  cfg->diagnose.enabled = diagnose_requested(flags);
  cfg->diagnose.paranoid = flags.get_bool("paranoid", false);
  const std::string min_dir = flags.get("min-schedule-out", "");
  if (!min_dir.empty()) {
    cfg->minimize = true;
    cfg->min_schedule_dir = min_dir;
  }
}

/// Fold the sweep's per-finding certificates into one report for
/// provenance.json / --explain printing.
diagnose::ProvenanceReport sweep_provenance(const util::Flags& flags,
                                            const explore::SweepResult& result) {
  diagnose::ProvenanceReport report;
  report.paranoid = flags.get_bool("paranoid", false);
  report.verified = result.certificates_verified;
  report.verify_failures = result.certificate_failures;
  for (const explore::SweepFinding& f : result.findings) {
    if (f.certificate) report.certificates.push_back(*f.certificate);
  }
  return report;
}

/// Shared tail for every mode: print certificates under --explain, write
/// --provenance-out, and fail the run on paranoid verification failures.
int finish_provenance(const util::Flags& flags,
                      const diagnose::ProvenanceReport& report) {
  if (!diagnose_requested(flags)) return 0;
  if (flags.get_bool("explain", false) || flags.get_bool("paranoid", false)) {
    std::printf("%s", report.to_string().c_str());
  }
  const std::string out = flags.get("provenance-out", "");
  if (!out.empty()) {
    diagnose::write_provenance_json(out, report);
    std::printf("provenance written to %s\n", out.c_str());
  }
  return report.verify_failures.empty() ? 0 : 1;
}

bool make_app(const util::Flags& flags, AppChoice* out) {
  out->name = flags.get("app", "lu");
  out->nthreads = flags.get_int("nthreads", 2);
  if (out->name == "hidden") {
    out->nranks = apps::kHiddenRaceRanks;
    out->rank_main = [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
    return true;
  }
  apps::AppKind kind;
  if (out->name == "lu") {
    kind = apps::AppKind::kLU;
  } else if (out->name == "bt") {
    kind = apps::AppKind::kBT;
  } else if (out->name == "sp") {
    kind = apps::AppKind::kSP;
  } else {
    std::fprintf(stderr, "unknown --app=%s (lu|bt|sp|hidden)\n",
                 out->name.c_str());
    return false;
  }
  out->nranks = flags.get_int("nranks", 2);
  apps::AppConfig cfg = flags.get_bool("clean", false)
                            ? apps::clean_config(kind, out->nranks,
                                                 out->nthreads)
                            : apps::paper_config(kind, out->nranks,
                                                 out->nthreads);
  out->rank_main = [cfg](simmpi::Process& p) { apps::run_app_rank(cfg, p); };
  return true;
}

int run_single(const util::Flags& flags) {
  const std::string app = flags.get("app", "lu");
  if (app == "hidden") {
    // The hidden app is not an injection benchmark; run it uncontrolled
    // under HOME via the sweep driver's baseline path.
    AppChoice choice;
    if (!make_app(flags, &choice)) return 2;
    explore::SweepConfig cfg;
    cfg.nranks = choice.nranks;
    cfg.nthreads = choice.nthreads;
    cfg.schedules = 0;
    apply_diagnose_flags(flags, &cfg);
    if (!apply_resilience_flags(flags, &cfg)) return 2;
    const explore::SweepResult result =
        explore::Sweeper(cfg).run(choice.rank_main);
    std::printf("%s", result.to_string().c_str());
    return finish_provenance(flags, sweep_provenance(flags, result));
  }

  apps::Tool tool = apps::Tool::kHome;
  const std::string tool_name = flags.get("tool", "home");
  if (tool_name == "base") {
    tool = apps::Tool::kBase;
  } else if (tool_name == "home") {
    tool = apps::Tool::kHome;
  } else if (tool_name == "marmot") {
    tool = apps::Tool::kMarmot;
  } else if (tool_name == "itc") {
    tool = apps::Tool::kItc;
  } else {
    std::fprintf(stderr, "unknown --tool=%s (base|home|marmot|itc)\n",
                 tool_name.c_str());
    return 2;
  }

  AppChoice choice;
  if (!make_app(flags, &choice)) return 2;
  apps::AppKind kind = app == "bt" ? apps::AppKind::kBT
                       : app == "sp" ? apps::AppKind::kSP
                                     : apps::AppKind::kLU;
  apps::AppConfig cfg = flags.get_bool("clean", false)
                            ? apps::clean_config(kind, choice.nranks,
                                                 choice.nthreads)
                            : apps::paper_config(kind, choice.nranks,
                                                 choice.nthreads);
  SessionConfig scfg;
  scfg.diagnose.enabled = diagnose_requested(flags);
  scfg.diagnose.paranoid = flags.get_bool("paranoid", false);
  if (scfg.diagnose.enabled && tool != apps::Tool::kHome) {
    std::fprintf(stderr, "--explain/--paranoid requires --tool=home\n");
    return 2;
  }
  if (!apply_fault_flags(flags, &scfg)) return 2;
  if (scfg.faults.enabled && tool != apps::Tool::kHome) {
    std::fprintf(stderr, "--inject/--faultplan requires --tool=home\n");
    return 2;
  }
  const apps::ToolRunResult result = apps::run_with_tool(tool, cfg, scfg);
  std::printf("app=%s tool=%s run=%.3fs analysis=%.3fs\n", app.c_str(),
              apps::tool_name(tool), result.run_seconds,
              result.analysis_seconds);
  std::printf("%s", result.report.to_string().c_str());
  return finish_provenance(flags, result.provenance);
}

int run_explore(const util::Flags& flags, int schedules) {
  AppChoice choice;
  if (!make_app(flags, &choice)) return 2;

  explore::SweepConfig cfg;
  cfg.nranks = choice.nranks;
  cfg.nthreads = choice.nthreads;
  cfg.schedules = schedules;
  cfg.base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed-base", 1));
  cfg.schedule_dir = flags.get("schedule-dir", "");
  if (!explore::parse_strategy_kind(flags.get("strategy", "random"),
                                    &cfg.strategy)) {
    std::fprintf(stderr,
                 "unknown --strategy (none|random|pct|delay|wildcard|"
                 "guided)\n");
    return 2;
  }
  cfg.stop_on_first_new = flags.get_bool("stop-on-first", false);
  apply_diagnose_flags(flags, &cfg);
  if (!apply_resilience_flags(flags, &cfg)) return 2;

  const std::string guidance_path = flags.get("guidance", "");
  if (!guidance_path.empty()) {
    auto guidance = std::make_shared<explore::StaticGuidance>();
    if (!explore::StaticGuidance::load(guidance_path, guidance.get())) {
      std::fprintf(stderr, "cannot load guidance %s\n", guidance_path.c_str());
      return 2;
    }
    cfg.guidance = std::move(guidance);
  } else if (cfg.strategy == explore::StrategyKind::kGuided &&
             choice.name == "hidden") {
    // Derive guidance from the app's built-in static model: the same
    // commstat pass the CLI runs, closed into the sweep in-process.
    const sast::CommstatResult comm =
        sast::analyze_comm_source(apps::hidden_race_model_source());
    cfg.guidance =
        std::make_shared<explore::StaticGuidance>(comm.guidance);
    std::printf("derived guidance from static model: %zu ambiguous site(s), "
                "%zu ordered pair(s)\n",
                cfg.guidance->ambiguous.size(), cfg.guidance->ordered.size());
  }

  const explore::SweepResult result =
      explore::Sweeper(cfg).run(choice.rank_main);
  std::printf("%s", result.to_string().c_str());
  for (const std::string& err : result.run_errors) {
    std::fprintf(stderr, "run error: %s\n", err.c_str());
  }
  return finish_provenance(flags, sweep_provenance(flags, result));
}

int run_replay(const util::Flags& flags, const std::string& path) {
  AppChoice choice;
  if (!make_app(flags, &choice)) return 2;

  explore::Schedule schedule;
  if (!explore::Schedule::load(path, &schedule)) {
    std::fprintf(stderr, "cannot load schedule %s\n", path.c_str());
    return 2;
  }
  explore::SweepConfig cfg;
  cfg.nranks = choice.nranks;
  cfg.nthreads = choice.nthreads;
  faults::FaultPlan plan;
  const faults::FaultPlan* fp = nullptr;
  const std::string plan_path = flags.get("faultplan", "");
  if (!plan_path.empty()) {
    if (!faults::FaultPlan::load(plan_path, &plan)) {
      std::fprintf(stderr, "cannot load faultplan %s\n", plan_path.c_str());
      return 2;
    }
    fp = &plan;
  }
  const std::set<std::string> keys =
      explore::Sweeper(cfg).replay(schedule, choice.rank_main, fp);
  std::printf("replayed %s (%zu decision(s), strategy %s, seed %llu): %zu "
              "violation(s)\n",
              path.c_str(), schedule.decisions.size(),
              schedule.strategy.c_str(),
              static_cast<unsigned long long>(schedule.seed), keys.size());
  for (const std::string& key : keys) std::printf("  %s\n", key.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const std::string replay = flags.get("replay", "");
  if (!replay.empty()) return run_replay(flags, replay);
  const int schedules = flags.get_int("explore", 0);
  if (schedules > 0) return run_explore(flags, schedules);
  return run_single(flags);
}
