/* Violation: collective skew.  Only rank 0 reaches the barrier; the other
 * ranks run straight to MPI_Finalize, so the rendezvous can never complete.
 * The static matcher classifies this CollectiveOrderDivergence as definite
 * — it holds on every abstract branch at every universe size. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Barrier(MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}
