/* Violation (paper Figure 2): both threads of each rank execute the same
 * receives with identical (source, tag, comm) — a ConcurrentRecvViolation
 * the engine classifies definite. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  int tag = 0;
  omp_set_num_threads(2);
  #pragma omp parallel for private(i)
  for (j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}
