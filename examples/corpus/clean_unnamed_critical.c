/* Clean: unnamed critical sections all share ONE global lock per the OpenMP
 * spec, so the wait and the test — each inside an unnamed critical — are
 * mutually serialized even though the criticals are lexically distinct. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  #pragma omp parallel
  {
    #pragma omp critical
    {
      MPI_Wait(&req, MPI_STATUS_IGNORE);
    }
    compute(req);
    #pragma omp critical
    {
      MPI_Test(&req, &flag, MPI_STATUS_IGNORE);
    }
  }
  MPI_Finalize();
  return 0;
}
