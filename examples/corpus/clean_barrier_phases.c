/* Clean: the send and receive are in different single constructs separated
 * by barriers (the single's implied barrier plus an explicit one), so their
 * barrier-phase intervals are disjoint — the engine proves they can never
 * happen in parallel and prunes both with reason barrier-separated. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  #pragma omp parallel
  {
    #pragma omp single
    {
      MPI_Send(&halo, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
    }
    compute(halo);
    #pragma omp barrier
    #pragma omp single
    {
      MPI_Recv(&halo, 1, MPI_INT, 1, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  }
  MPI_Finalize();
  return 0;
}
