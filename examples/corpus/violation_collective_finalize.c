/* Violation: plain MPI_Init (MPI_THREAD_SINGLE) with MPI calls in a parallel
 * region (InitializationViolation), a team-executed collective on one
 * communicator (CollectiveCallViolation), and MPI_Finalize inside the region
 * (FinalizationViolation) — all definite. */
#include <mpi.h>
int main() {
  MPI_Init(0, 0);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  #pragma omp parallel
  {
    MPI_Barrier(MPI_COMM_WORLD);
    MPI_Finalize();
  }
  return 0;
}
