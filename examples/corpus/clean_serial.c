/* Clean: purely serial MPI — no parallel regions, nothing to instrument. */
#include <mpi.h>
int main() {
  MPI_Init(0, 0);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Bcast(&n, 1, MPI_INT, 0, MPI_COMM_WORLD);
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}
