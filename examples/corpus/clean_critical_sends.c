/* Clean: every MPI call in the parallel region is guarded by the same named
 * critical section, so the static engine proves all pairs (and self-races)
 * serialized and prunes the sites from the instrumentation plan with reason
 * critical-guarded(net). */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  #pragma omp parallel
  {
    #pragma omp critical(net)
    {
      MPI_Send(&a, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);
    }
    compute(a);
    #pragma omp critical(net)
    {
      MPI_Recv(&b, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  }
  MPI_Finalize();
  return 0;
}
