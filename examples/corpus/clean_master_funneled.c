/* Clean under MPI_THREAD_FUNNELED: the only MPI call inside the parallel
 * region is in a master construct, so it always runs on the main thread —
 * compliant with FUNNELED, and pruned with reason master-guarded. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_FUNNELED, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  #pragma omp parallel
  {
    compute(rank);
    #pragma omp master
    {
      MPI_Allreduce(&x, &y, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}
