/* Violation: the whole team waits on one shared request object
 * (ConcurrentRequestViolation, definite). */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Irecv(&buf, 1, MPI_INT, 0, 3, MPI_COMM_WORLD, &req);
  #pragma omp parallel
  {
    MPI_Wait(&req, MPI_STATUS_IGNORE);
  }
  MPI_Finalize();
  return 0;
}
