/* Violation: a probe and the matching receive run concurrently on the same
 * (source, tag, comm) — another thread can steal the probed message
 * (ProbeViolation, definite). */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  #pragma omp parallel
  {
    MPI_Probe(0, 5, MPI_COMM_WORLD, &status);
    MPI_Recv(&buf, 1, MPI_INT, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
  }
  MPI_Finalize();
  return 0;
}
