/* Clean: nearest-neighbour ring shift.  Every rank's eager send to
 * (rank + 1) % size pairs uniquely with the right neighbour's receive from
 * (rank - 1 + size) % size — the static matcher folds both modular peer
 * expressions and proves the pattern matches at every universe size. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  MPI_Send(&halo, 1, MPI_INT, (rank + 1) % size, 9, MPI_COMM_WORLD);
  MPI_Recv(&halo, 1, MPI_INT, (rank - 1 + size) % size, 9, MPI_COMM_WORLD,
           MPI_STATUS_IGNORE);
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return 0;
}
