/* Violation: head-to-head blocking receives.  Both ranks post MPI_Recv
 * before their MPI_Send, so neither message is ever deposited — the static
 * communication matcher proves a CommDeadlock cycle on every branch and
 * emits a witness schedule. */
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  if (rank == 0) {
    MPI_Recv(&buf, 1, MPI_INT, 1, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&buf, 1, MPI_INT, 1, 5, MPI_COMM_WORLD);
  }
  if (rank == 1) {
    MPI_Recv(&buf, 1, MPI_INT, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&buf, 1, MPI_INT, 0, 5, MPI_COMM_WORLD);
  }
  MPI_Finalize();
  return 0;
}
