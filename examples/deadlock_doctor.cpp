// Deadlock diagnosis: run the paper's Figure 2 ping-pong in *rendezvous*
// mode, where the shared-tag bug actually deadlocks (both ranks' sends block
// waiting for receives that can never be posted).  The wait-for-graph
// monitor names the ranks in the cycle, and HOME's report names the
// violation that caused it — the two halves of the paper's diagnosis story.
//
//   ./deadlock_doctor [--timeout-ms=300]
#include <cstdio>

#include "src/home/deadlock_monitor.hpp"
#include "src/home/session.hpp"
#include "src/homp/runtime.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace home;
  using namespace home::simmpi;
  const auto flags = home::util::Flags::parse(argc, argv);

  Session session;
  DeadlockMonitor monitor(2);

  UniverseConfig ucfg;
  ucfg.nranks = 2;
  ucfg.rendezvous_sends = true;  // synchronous sends: the bug can now hang.
  ucfg.block_timeout_ms = flags.get_int("timeout-ms", 300);
  session.configure(ucfg);

  Universe universe(ucfg);
  session.attach(universe);
  universe.hooks().add(&monitor);
  homp::set_default_threads(2);

  std::printf("running Figure 2's shared-tag ping-pong with synchronous "
              "sends (timeout %dms)...\n\n", ucfg.block_timeout_ms);

  auto run = universe.run([](Process& p) {
    p.init_thread(ThreadLevel::kMultiple);
    homp::parallel(2, [&] {
      int a = homp::thread_num();
      // Both threads of both ranks send first: with rendezvous semantics and
      // one shared tag this interleaving deadlocks.
      const int peer = 1 - p.rank();
      p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"dd.send"});
      p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr, {"dd.recv"});
    });
    p.finalize();
  });
  session.detach(universe);

  std::printf("run result: %s\n", run.ok() ? "completed (lucky interleaving)"
                                           : "ABORTED (blocked ranks timed out)");
  for (const auto& error : run.errors) std::printf("  %s\n", error.c_str());

  std::printf("\nwait-for-graph diagnosis: %s\n", monitor.diagnose().c_str());
  std::printf("\ndynamic report (receives were never reached — the "
              "path-coverage limit of dynamic analysis the paper notes):\n%s\n",
              session.analyze().to_string().c_str());

  // This is where the static half of HOME earns its keep: the compile-time
  // analysis sees the unexecuted receives and predicts the root cause.
  const auto warnings = home::sast::diagnose_source(R"(
#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  int tag = 0;
  #pragma omp parallel
  {
    MPI_Send(&a, 1, MPI_INT, peer, tag, MPI_COMM_WORLD);
    MPI_Recv(&a, 1, MPI_INT, peer, tag, MPI_COMM_WORLD, st);
  }
  MPI_Finalize();
}
)");
  std::printf("static root-cause analysis of the source:\n");
  for (const auto& w : warnings) std::printf("  %s\n", w.to_string().c_str());

  bool static_found_recv_race = false;
  for (const auto& w : warnings) {
    if (w.cls == home::sast::WarningClass::kConcurrentRecv) {
      static_found_recv_race = true;
    }
  }

  const bool diagnosed =
      !run.ok() && !monitor.cycles().empty() && static_found_recv_race;
  std::printf("deadlock_doctor: %s\n",
              diagnosed ? "OK (hang diagnosed with wait cycle + root cause)"
                        : "note: the racy interleaving happened to complete");
  return 0;
}
