// Quickstart: the paper's Figure 1 case study, checked end-to-end.
//
// A hybrid MPI/OpenMP program initializes MPI with plain MPI_Init — which
// provides only MPI_THREAD_SINGLE — and then issues MPI calls from an OpenMP
// parallel sections construct.  HOME flags the InitializationViolation; the
// repaired program (MPI_Init_thread with MPI_THREAD_MULTIPLE) comes out
// clean.
//
//   ./quickstart [--nranks=2] [--nthreads=2]
//                [--trace-out=trace.json] [--telemetry-json=telemetry.json]
//                [--prom-out=metrics.prom]
#include <cstdio>
#include <string>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/worksharing.hpp"
#include "src/obs/export.hpp"
#include "src/util/flags.hpp"

namespace {

using home::CheckConfig;
using home::check_program;
using namespace home::simmpi;

void figure1_body(Process& p, bool repaired) {
  if (repaired) {
    p.init_thread(ThreadLevel::kMultiple, {"fig1.init"});
  } else {
    p.init({"fig1.init"});  // MPI_Init: thread support stays SINGLE.
  }
  home::homp::parallel(2, [&] {
    home::homp::sections({
        [&] {
          if (p.rank() == 0) {
            const int payload = 1;
            p.send(&payload, 1, Datatype::kInt, 1, 0, kCommWorld,
                   {"fig1.send"});
          }
        },
        [&] {
          if (p.rank() == 1) {
            int payload = 0;
            p.recv(&payload, 1, Datatype::kInt, 0, 0, kCommWorld, nullptr,
                   {"fig1.recv"});
          }
        },
    });
  });
  p.finalize({"fig1.finalize"});
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = home::util::Flags::parse(argc, argv);
  CheckConfig cfg;
  cfg.nranks = flags.get_int("nranks", 2);
  cfg.nthreads = flags.get_int("nthreads", 2);

  std::printf("=== Figure 1 case study: MPI_Init + omp parallel sections ===\n");
  auto buggy = check_program(cfg, [](Process& p) { figure1_body(p, false); });
  std::printf("%s\n", buggy.report.to_string().c_str());

  std::printf("=== repaired: MPI_Init_thread(MPI_THREAD_MULTIPLE) ===\n");
  auto fixed = check_program(cfg, [](Process& p) { figure1_body(p, true); });
  std::printf("%s\n", fixed.report.to_string().c_str());

  const std::string trace_out = flags.get("trace-out", "");
  if (!trace_out.empty()) {
    home::obs::write_chrome_trace(trace_out);
    std::printf("wrote Chrome trace to %s (load in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  const std::string telemetry_out = flags.get("telemetry-json", "");
  if (!telemetry_out.empty()) {
    home::obs::write_telemetry_json(telemetry_out);
    std::printf("wrote telemetry snapshot to %s\n", telemetry_out.c_str());
  }
  const std::string prom_out = flags.get("prom-out", "");
  if (!prom_out.empty()) {
    const std::string text = home::obs::prometheus_text();
    std::string error;
    if (!home::obs::check_prometheus_text(text, &error)) {
      std::fprintf(stderr, "quickstart: invalid prometheus exposition: %s\n",
                   error.c_str());
      return 1;
    }
    home::obs::write_json_file(prom_out, text);  // plain text + newline.
    std::printf("wrote prometheus exposition to %s (validated)\n",
                prom_out.c_str());
  }

  const bool ok = !buggy.report.clean() && fixed.report.clean();
  std::printf("quickstart: %s\n", ok ? "OK (bug flagged, fix clean)" : "UNEXPECTED");
  return ok ? 0 : 1;
}
