// Live monitoring demo: run the LU-MZ mini-app with the paper's six injected
// violations in AnalysisMode::kOnline and print each violation the moment
// the streaming engine confirms it — while the program is still running —
// then the end-of-run reconciliation against the post-mortem pipeline.
//
// While the program runs, a background ticker prints one telemetry stats
// line per interval (events analyzed, queue depth/drops, watermark lag) —
// the live analogue of the end-of-run summary.
//
//   ./live_monitor [--app=lu|bt|sp] [--nranks=2] [--nthreads=2]
//                  [--queue=4096] [--retire=1024]
//                  [--stats-interval-ms=500] [--trace-out=trace.json]
//                  [--telemetry-json=telemetry.json]
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "src/apps/app.hpp"
#include "src/home/check.hpp"
#include "src/obs/export.hpp"
#include "src/obs/telemetry.hpp"
#include "src/spec/violations.hpp"
#include "src/util/flags.hpp"

namespace {

/// Periodic one-line pipeline pulse, read straight from the global registry.
class StatsTicker {
 public:
  explicit StatsTicker(int interval_ms) : interval_ms_(interval_ms) {
    if (interval_ms_ <= 0) return;
    worker_ = std::thread([this] { run(); });
  }

  ~StatsTicker() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

 private:
  void run() {
    home::obs::Registry& reg = home::obs::Registry::global();
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                         [this] { return stopped_; })) {
      lock.unlock();
      std::printf(
          "[stats] analyzed=%llu queue(depth_hwm=%lld drops=%llu) "
          "lag=%lld retired=%llu\n",
          static_cast<unsigned long long>(
              reg.counter("online.events_analyzed").value()),
          static_cast<long long>(reg.gauge("online.queue.depth").high_water()),
          static_cast<unsigned long long>(
              reg.counter("online.queue.drops.capacity").value() +
              reg.counter("online.queue.drops.shutdown").value()),
          static_cast<long long>(reg.gauge("online.watermark.lag").value()),
          static_cast<unsigned long long>(
              reg.counter("online.records_retired").value()));
      std::fflush(stdout);
      lock.lock();
    }
  }

  const int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread worker_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace home;
  const auto flags = util::Flags::parse(argc, argv);

  const std::string app = flags.get("app", "lu");
  apps::AppKind kind = apps::AppKind::kLU;
  if (app == "bt") kind = apps::AppKind::kBT;
  if (app == "sp") kind = apps::AppKind::kSP;

  const apps::AppConfig acfg =
      apps::paper_config(kind, flags.get_int("nranks", 2),
                         flags.get_int("nthreads", 2));

  CheckConfig cfg;
  cfg.nranks = acfg.nranks;
  cfg.nthreads = acfg.nthreads;
  cfg.block_timeout_ms = acfg.block_timeout_ms;
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue", 4096));
  cfg.session.online.retire_interval =
      static_cast<std::size_t>(flags.get_int("retire", 1024));

  std::atomic<int> live{0};
  cfg.session.online.on_violation = [&live](const spec::Violation& v) {
    std::printf("[live %02d] %s rank %d: %s\n", live.fetch_add(1) + 1,
                spec::violation_type_name(v.type), v.rank,
                v.detail.c_str());
    std::fflush(stdout);
  };

  std::printf("=== live monitor: %s, %d ranks x %d threads, online mode ===\n",
              apps::app_kind_name(kind), cfg.nranks, cfg.nthreads);

  StatsTicker ticker(flags.get_int("stats-interval-ms", 500));
  const CheckResult result = check_program(
      cfg, [&acfg](simmpi::Process& p) { apps::run_app_rank(acfg, p); });
  ticker.stop();

  std::printf("\n--- program finished (ok=%d) ---\n", result.run.ok() ? 1 : 0);
  std::printf("events streamed: %zu, peak resident state: %zu records, "
              "%zu retirement sweeps reclaimed %zu records\n",
              result.online_stats.events_processed,
              result.online_stats.peak_resident,
              result.online_stats.retire_sweeps,
              result.online_stats.records_retired);
  std::printf("violations: %zu total (%d reported live, %zu duplicates "
              "suppressed)\n",
              result.report.violations().size(), live.load(),
              result.online_stats.duplicate_reports);

  if (result.reconciliation.ran) {
    std::printf("reconciliation vs post-mortem: %s\n",
                result.reconciliation.equivalent
                    ? "EQUIVALENT (same violation set)"
                    : "MISMATCH");
    for (const std::string& k : result.reconciliation.online_only) {
      std::printf("  online only:      %s\n", k.c_str());
    }
    for (const std::string& k : result.reconciliation.post_mortem_only) {
      std::printf("  post-mortem only: %s\n", k.c_str());
    }
  }
  std::printf("\n--- final report ---\n%s\n", result.report.to_string().c_str());

  std::printf("\n--- pipeline telemetry ---\n%s",
              home::obs::summary_table().c_str());
  const std::string trace_out = flags.get("trace-out", "");
  if (!trace_out.empty()) {
    home::obs::write_chrome_trace(trace_out);
    std::printf("wrote Chrome trace to %s (load in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  const std::string telemetry_out = flags.get("telemetry-json", "");
  if (!telemetry_out.empty()) {
    home::obs::write_telemetry_json(telemetry_out);
    std::printf("wrote telemetry snapshot to %s\n", telemetry_out.c_str());
  }
  return result.reconciliation.ran && !result.reconciliation.equivalent ? 1 : 0;
}
