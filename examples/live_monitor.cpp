// Live monitoring demo: run the LU-MZ mini-app with the paper's six injected
// violations in AnalysisMode::kOnline and print each violation the moment
// the streaming engine confirms it — while the program is still running —
// then the end-of-run reconciliation against the post-mortem pipeline.
//
//   ./live_monitor [--app=lu|bt|sp] [--nranks=2] [--nthreads=2]
//                  [--queue=4096] [--retire=1024]
#include <atomic>
#include <cstdio>
#include <string>

#include "src/apps/app.hpp"
#include "src/home/check.hpp"
#include "src/spec/violations.hpp"
#include "src/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace home;
  const auto flags = util::Flags::parse(argc, argv);

  const std::string app = flags.get("app", "lu");
  apps::AppKind kind = apps::AppKind::kLU;
  if (app == "bt") kind = apps::AppKind::kBT;
  if (app == "sp") kind = apps::AppKind::kSP;

  const apps::AppConfig acfg =
      apps::paper_config(kind, flags.get_int("nranks", 2),
                         flags.get_int("nthreads", 2));

  CheckConfig cfg;
  cfg.nranks = acfg.nranks;
  cfg.nthreads = acfg.nthreads;
  cfg.block_timeout_ms = acfg.block_timeout_ms;
  cfg.session.mode = AnalysisMode::kOnline;
  cfg.session.online.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue", 4096));
  cfg.session.online.retire_interval =
      static_cast<std::size_t>(flags.get_int("retire", 1024));

  std::atomic<int> live{0};
  cfg.session.online.on_violation = [&live](const spec::Violation& v) {
    std::printf("[live %02d] %s rank %d: %s\n", live.fetch_add(1) + 1,
                spec::violation_type_name(v.type), v.rank,
                v.detail.c_str());
    std::fflush(stdout);
  };

  std::printf("=== live monitor: %s, %d ranks x %d threads, online mode ===\n",
              apps::app_kind_name(kind), cfg.nranks, cfg.nthreads);

  const CheckResult result = check_program(
      cfg, [&acfg](simmpi::Process& p) { apps::run_app_rank(acfg, p); });

  std::printf("\n--- program finished (ok=%d) ---\n", result.run.ok() ? 1 : 0);
  std::printf("events streamed: %zu, peak resident state: %zu records, "
              "%zu retirement sweeps reclaimed %zu records\n",
              result.online_stats.events_processed,
              result.online_stats.peak_resident,
              result.online_stats.retire_sweeps,
              result.online_stats.records_retired);
  std::printf("violations: %zu total (%d reported live, %zu duplicates "
              "suppressed)\n",
              result.report.violations().size(), live.load(),
              result.online_stats.duplicate_reports);

  if (result.reconciliation.ran) {
    std::printf("reconciliation vs post-mortem: %s\n",
                result.reconciliation.equivalent
                    ? "EQUIVALENT (same violation set)"
                    : "MISMATCH");
    for (const std::string& k : result.reconciliation.online_only) {
      std::printf("  online only:      %s\n", k.c_str());
    }
    for (const std::string& k : result.reconciliation.post_mortem_only) {
      std::printf("  post-mortem only: %s\n", k.c_str());
    }
  }
  std::printf("\n--- final report ---\n%s\n", result.report.to_string().c_str());
  return result.reconciliation.ran && !result.reconciliation.equivalent ? 1 : 0;
}
