// The compile-time half of HOME as a standalone command-line tool: parse a
// hybrid MPI/OpenMP C source, print the control-flow graphs, the MPI call
// sites with their dataflow facts (MHP position, locks, one-thread
// constructs), the instrumentation plan with prune reasons, the static
// warnings, and the rewritten (HMPI_-wrapped) source.
//
//   ./static_analyzer_cli [file.c] [--dot] [--json] [--lint]
//                         [--no-rewrite] [--emit-plan=FILE] [--sarif=FILE]
//                         [--emit-guidance=FILE]
//
// Without a file argument, the paper's Figure 2 case study is analyzed.
// --emit-plan writes the instrumentation plan to FILE for a later dynamic
// run (home::SessionConfig with InstrumentFilter::kPlan).
// --json emits a machine-readable report (sites, plan, warnings) instead of
// the human-readable dump.
// --lint prints only the warnings and exits nonzero when any warning is
// classified definite — suitable as a CI gate.
// --sarif writes the warnings as SARIF 2.1.0 so CI can annotate PRs.
// --emit-guidance writes the commstat StaticGuidance artifact (ambiguous
// wildcard sites + statically-ordered pairs) for guided exploration.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/sast/analysis.hpp"
#include "src/sast/commstat.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/sast/rewriter.hpp"
#include "src/util/flags.hpp"
#include "src/util/strings.hpp"

namespace {

constexpr const char* kDefaultSource = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  int tag = 0;
  omp_set_num_threads(2);
  #pragma omp parallel for private(i)
  for (j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}
)";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::string& name,
                const home::sast::AnalysisResult& analysis,
                const std::vector<home::sast::StaticWarning>& warnings) {
  using home::sast::Severity;
  std::ostringstream os;
  os << "{\n  \"source\": \"" << json_escape(name) << "\",\n";
  os << "  \"calls\": [\n";
  for (std::size_t i = 0; i < analysis.calls.size(); ++i) {
    const auto& s = analysis.calls[i];
    os << "    {\"label\": \"" << json_escape(s.label) << "\", \"line\": "
       << s.line << ", \"parallel\": " << (s.in_parallel ? "true" : "false")
       << ", \"master\": " << (s.in_master ? "true" : "false")
       << ", \"single\": " << (s.in_single ? "true" : "false")
       << ", \"section\": " << (s.in_section ? "true" : "false")
       << ", \"pruned\": " << (s.pruned ? "true" : "false");
    if (s.pruned) {
      os << ", \"prune_reason\": \"" << json_escape(s.prune_reason) << "\"";
    }
    os << ", \"locks\": [";
    std::size_t k = 0;
    for (const auto& lock : s.locks) {
      os << (k++ ? ", " : "") << "\"" << json_escape(lock) << "\"";
    }
    os << "]}" << (i + 1 < analysis.calls.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"plan\": {\"total\": " << analysis.plan.total_calls
     << ", \"instrumented\": " << analysis.plan.instrumented_calls
     << ", \"filtered\": " << analysis.plan.filtered_calls
     << ", \"pruned\": " << analysis.plan.pruned_calls << "},\n";
  os << "  \"warnings\": [\n";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    const auto& w = warnings[i];
    os << "    {\"class\": \"" << home::sast::warning_class_name(w.cls)
       << "\", \"severity\": \"" << home::sast::severity_name(w.severity)
       << "\", \"line\": " << w.line << ", \"site\": \""
       << json_escape(w.site) << "\", \"site2\": \"" << json_escape(w.site2)
       << "\", \"witness\": \"" << json_escape(w.witness)
       << "\", \"message\": \"" << json_escape(w.message) << "\"}"
       << (i + 1 < warnings.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::fputs(os.str().c_str(), stdout);
}

/// SARIF 2.1.0: one run, one rule per warning class, one result per warning.
/// Definite findings map to level "error", possible ones to "warning".
bool write_sarif(const std::string& path, const std::string& name,
                 const std::vector<home::sast::StaticWarning>& warnings) {
  using home::sast::Severity;
  std::set<std::string> rule_ids;
  for (const auto& w : warnings) {
    rule_ids.insert(home::sast::warning_class_name(w.cls));
  }
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\"name\": \"home-sast\", "
     << "\"rules\": [\n";
  std::size_t k = 0;
  for (const auto& id : rule_ids) {
    os << "      {\"id\": \"" << id << "\"}"
       << (++k < rule_ids.size() ? "," : "") << "\n";
  }
  os << "    ]}},\n"
     << "    \"results\": [\n";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    const auto& w = warnings[i];
    os << "      {\"ruleId\": \"" << home::sast::warning_class_name(w.cls)
       << "\", \"level\": \""
       << (w.severity == Severity::kDefinite ? "error" : "warning")
       << "\", \"message\": {\"text\": \"" << json_escape(w.message)
       << (w.site.empty() ? "" : " (" + json_escape(w.site) + ")")
       << "\"}, \"locations\": [{\"physicalLocation\": "
       << "{\"artifactLocation\": {\"uri\": \"" << json_escape(name)
       << "\"}, \"region\": {\"startLine\": " << (w.line > 0 ? w.line : 1)
       << "}}}]}" << (i + 1 < warnings.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << os.str();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace home::sast;
  const auto flags = home::util::Flags::parse(argc, argv);

  std::string source = kDefaultSource;
  std::string name = "<figure2>";
  if (!flags.positional().empty()) {
    name = flags.positional()[0];
    std::ifstream in(name);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", name.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  const bool json = flags.get_bool("json", false);
  const bool lint = flags.get_bool("lint", false);

  TranslationUnit unit = parse(source);
  AnalysisResult analysis = analyze(unit);
  auto warnings = diagnose(analysis);

  // Communication matching/deadlock pass; its warnings join the report and
  // its guidance artifact feeds guided exploration.
  const CommstatResult comm = analyze_comm(unit, analysis);
  warnings.insert(warnings.end(), comm.warnings.begin(), comm.warnings.end());

  const std::string sarif_path = flags.get("sarif", "");
  if (!sarif_path.empty()) {
    if (!write_sarif(sarif_path, name, warnings)) {
      std::fprintf(stderr, "cannot write SARIF to %s\n", sarif_path.c_str());
      return 1;
    }
  }
  const std::string guidance_path = flags.get("emit-guidance", "");
  if (!guidance_path.empty()) {
    if (!comm.guidance.save(guidance_path)) {
      std::fprintf(stderr, "cannot write guidance to %s\n",
                   guidance_path.c_str());
      return 1;
    }
  }

  if (json) {
    print_json(name, analysis, warnings);
    bool definite = false;
    for (const auto& w : warnings) {
      if (w.severity == Severity::kDefinite) definite = true;
    }
    return lint && definite ? 2 : 0;
  }

  if (lint) {
    bool definite = false;
    for (const auto& w : warnings) {
      std::printf("%s\n", w.to_string().c_str());
      if (w.severity == Severity::kDefinite) definite = true;
    }
    std::printf("%s: %zu warning(s)%s\n", name.c_str(), warnings.size(),
                definite ? ", definite violations found" : "");
    return definite ? 2 : 0;
  }

  std::printf("=== static analysis of %s ===\n\n", name.c_str());
  if (!unit.errors.empty()) {
    std::printf("parse diagnostics:\n");
    for (const auto& e : unit.errors) std::printf("  %s\n", e.c_str());
  }

  if (flags.get_bool("dot", false)) {
    for (std::size_t i = 0; i < unit.functions.size(); ++i) {
      std::printf("%s\n", analysis.cfgs[i].to_dot(unit.functions[i].name).c_str());
    }
  }

  std::printf("MPI call sites (%zu):\n", analysis.calls.size());
  for (const auto& site : analysis.calls) {
    const std::string pruned_tag =
        site.pruned ? "[pruned: " + site.prune_reason + "]" : "";
    std::printf("  %-40s line %-4d %s%s%s%s\n", site.label.c_str(), site.line,
                site.in_parallel ? "[parallel] " : "[serial]   ",
                site.locks.empty() ? "" : "[locked] ",
                site.in_master_or_single ? "[master/single] " : "",
                pruned_tag.c_str());
  }

  std::printf("\ninstrumentation plan: %zu of %zu calls instrumented, %zu "
              "filtered as serial, %zu pruned as statically safe\n",
              analysis.plan.instrumented_calls, analysis.plan.total_calls,
              analysis.plan.filtered_calls, analysis.plan.pruned_calls);
  for (const auto& label : analysis.plan.instrument) {
    std::printf("  wrap  %s\n", label.c_str());
  }
  for (const auto& [label, reason] : analysis.plan.pruned) {
    std::printf("  prune %s (%s)\n", label.c_str(), reason.c_str());
  }

  const std::string plan_path = flags.get("emit-plan", "");
  if (!plan_path.empty()) {
    save_plan_file(plan_path, analysis.plan);
    std::printf("\nplan written to %s\n", plan_path.c_str());
  }

  std::printf("\nstatic warnings (%zu):\n", warnings.size());
  for (const auto& w : warnings) std::printf("  %s\n", w.to_string().c_str());

  std::printf("\n%s\n", comm.to_string().c_str());
  for (const auto& site : comm.guidance.ambiguous) {
    std::printf("  ambiguous %s (%zu alternatives, phase %d)\n",
                site.site.c_str(), site.alternatives, site.phase);
  }
  for (const auto& why : comm.imprecision) {
    std::printf("  imprecision: %s\n", why.c_str());
  }

  if (flags.get_bool("rewrite", true)) {
    const RewriteResult rewritten = rewrite(source, analysis);
    std::printf("\n=== rewritten source (%zu wrapper substitutions) ===\n%s\n",
                rewritten.replaced, rewritten.source.c_str());
  }
  return 0;
}
