// The compile-time half of HOME as a standalone command-line tool: parse a
// hybrid MPI/OpenMP C source, print the control-flow graphs, the MPI call
// sites with parallel-region / critical context, the instrumentation plan,
// the static warnings, and the rewritten (HMPI_-wrapped) source.
//
//   ./static_analyzer_cli [file.c] [--dot] [--no-rewrite] [--emit-plan=FILE]
//
// Without a file argument, the paper's Figure 2 case study is analyzed.
// --emit-plan writes the instrumentation plan to FILE for a later dynamic
// run (home::SessionConfig with InstrumentFilter::kPlan).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/sast/analysis.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/sast/rewriter.hpp"
#include "src/util/flags.hpp"
#include "src/util/strings.hpp"

namespace {

constexpr const char* kDefaultSource = R"(#include <mpi.h>
int main() {
  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  int tag = 0;
  omp_set_num_threads(2);
  #pragma omp parallel for private(i)
  for (j = 0; j < 2; j++) {
    if (rank == 0) {
      MPI_Send(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD);
      MPI_Recv(&a, 1, MPI_INT, 1, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    if (rank == 1) {
      MPI_Recv(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      MPI_Send(&a, 1, MPI_INT, 0, tag, MPI_COMM_WORLD);
    }
  }
  MPI_Finalize();
  return 0;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace home::sast;
  const auto flags = home::util::Flags::parse(argc, argv);

  std::string source = kDefaultSource;
  std::string name = "<figure2>";
  if (!flags.positional().empty()) {
    name = flags.positional()[0];
    std::ifstream in(name);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", name.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  std::printf("=== static analysis of %s ===\n\n", name.c_str());
  TranslationUnit unit = parse(source);
  if (!unit.errors.empty()) {
    std::printf("parse diagnostics:\n");
    for (const auto& e : unit.errors) std::printf("  %s\n", e.c_str());
  }

  AnalysisResult analysis = analyze(unit);

  if (flags.get_bool("dot", false)) {
    for (std::size_t i = 0; i < unit.functions.size(); ++i) {
      std::printf("%s\n", analysis.cfgs[i].to_dot(unit.functions[i].name).c_str());
    }
  }

  std::printf("MPI call sites (%zu):\n", analysis.calls.size());
  for (const auto& site : analysis.calls) {
    std::printf("  %-40s line %-4d %s%s%s\n", site.label.c_str(), site.line,
                site.in_parallel ? "[parallel] " : "[serial]   ",
                site.critical_stack.empty() ? "" : "[critical] ",
                site.in_master_or_single ? "[master/single]" : "");
  }

  std::printf("\ninstrumentation plan: %zu of %zu calls instrumented, %zu "
              "filtered as provably thread-safe\n",
              analysis.plan.instrumented_calls, analysis.plan.total_calls,
              analysis.plan.filtered_calls);
  for (const auto& label : analysis.plan.instrument) {
    std::printf("  wrap %s\n", label.c_str());
  }

  const std::string plan_path = flags.get("emit-plan", "");
  if (!plan_path.empty()) {
    save_plan_file(plan_path, analysis.plan);
    std::printf("\nplan written to %s\n", plan_path.c_str());
  }

  const auto warnings = diagnose(analysis);
  std::printf("\nstatic warnings (%zu):\n", warnings.size());
  for (const auto& w : warnings) std::printf("  %s\n", w.to_string().c_str());

  if (flags.get_bool("rewrite", true)) {
    const RewriteResult rewritten = rewrite(source, analysis);
    std::printf("\n=== rewritten source (%zu wrapper substitutions) ===\n%s\n",
                rewritten.replaced, rewritten.source.c_str());
  }
  return 0;
}
