// The paper's Figure 2 case study: a two-rank ping-pong where each rank's
// two OpenMP threads share one message tag.  Message-to-thread matching is
// undefined and the program can deadlock nondeterministically; HOME reports
// the ConcurrentRecvViolation even on runs where everything happens to work.
// The fix — thread-id tags — comes out clean.
//
//   ./case_study2 [--nranks=2]
#include <cstdio>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/util/flags.hpp"

namespace {

using home::CheckConfig;
using home::check_program;
using namespace home::simmpi;

void figure2_body(Process& p, bool per_thread_tags) {
  p.init_thread(ThreadLevel::kMultiple, {"fig2.init"});
  home::homp::parallel(2, [&] {
    const int tag = per_thread_tags ? home::homp::thread_num() : 0;
    int a = home::homp::thread_num();
    if (p.rank() == 0) {
      p.send(&a, 1, Datatype::kInt, 1, tag, kCommWorld, {"fig2.send0"});
      p.recv(&a, 1, Datatype::kInt, 1, tag, kCommWorld, nullptr,
             {"fig2.recv0"});
    } else if (p.rank() == 1) {
      p.recv(&a, 1, Datatype::kInt, 0, tag, kCommWorld, nullptr,
             {"fig2.recv1"});
      p.send(&a, 1, Datatype::kInt, 0, tag, kCommWorld, {"fig2.send1"});
    }
  });
  p.finalize({"fig2.finalize"});
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = home::util::Flags::parse(argc, argv);
  CheckConfig cfg;
  cfg.nranks = flags.get_int("nranks", 2);

  std::printf("=== Figure 2: shared tag across threads ===\n");
  auto buggy = check_program(cfg, [](Process& p) { figure2_body(p, false); });
  std::printf("%s\n", buggy.report.to_string().c_str());

  std::printf("=== repaired: thread-id tags ===\n");
  auto fixed = check_program(cfg, [](Process& p) { figure2_body(p, true); });
  std::printf("%s\n", fixed.report.to_string().c_str());

  const bool ok =
      buggy.report.has(home::spec::ViolationType::kConcurrentRecv) &&
      fixed.report.clean();
  std::printf("case_study2: %s\n", ok ? "OK (race flagged, fix clean)" : "UNEXPECTED");
  return ok ? 0 : 1;
}
