// A tour of all six thread-safety violation classes of Section III.A:
// for each class, runs a minimal hybrid program that commits the violation
// and prints HOME's report.
//
//   ./violation_tour
#include <cstdio>

#include "src/home/check.hpp"
#include "src/homp/runtime.hpp"
#include "src/homp/worksharing.hpp"
#include "src/spec/violations.hpp"

namespace {

using namespace home::simmpi;
using home::CheckConfig;
using home::check_program;
using home::homp::parallel;
using home::homp::thread_num;
using home::spec::ViolationType;

struct Case {
  ViolationType type;
  const char* title;
  void (*body)(Process&);
};

void v1_body(Process& p) {
  p.init_thread(ThreadLevel::kFunneled);
  parallel(2, [&] {
    if (thread_num() == 1) {  // MPI off the main thread under FUNNELED.
      int x = p.rank(), y = 0;
      p.allreduce(&x, &y, 1, Datatype::kInt, ReduceOp::kSum, kCommWorld,
                  {"tour.v1"});
    }
  });
  p.finalize();
}

void v2_body(Process& p) {
  p.init_thread(ThreadLevel::kMultiple);
  parallel(2, [&] {
    if (thread_num() == 1) p.finalize({"tour.v2"});
  });
}

void v3_body(Process& p) {
  p.init_thread(ThreadLevel::kMultiple);
  parallel(2, [&] {
    int a = 0;
    const int peer = 1 - p.rank();
    if (p.rank() == 0) {
      p.send(&a, 1, Datatype::kInt, peer, 0, kCommWorld, {"tour.v3.send"});
    } else {
      p.recv(&a, 1, Datatype::kInt, peer, 0, kCommWorld, nullptr,
             {"tour.v3.recv"});
    }
  });
  p.finalize();
}

void v4_body(Process& p) {
  p.init_thread(ThreadLevel::kMultiple);
  if (p.rank() == 0) {
    static int buf;
    Request shared = p.irecv(&buf, 1, Datatype::kInt, 1, 0, kCommWorld);
    parallel(2, [&] { p.wait(shared, nullptr, {"tour.v4.wait"}); });
  } else {
    const int v = 7;
    p.send(&v, 1, Datatype::kInt, 0, 0, kCommWorld);
  }
  p.finalize();
}

void v5_body(Process& p) {
  p.init_thread(ThreadLevel::kMultiple);
  if (p.rank() == 0) {
    for (int i = 0; i < 2; ++i) {
      const int v = i;
      p.send(&v, 1, Datatype::kInt, 1, 5, kCommWorld);
    }
  } else {
    parallel(2, [&] {
      if (thread_num() == 0) {
        Status st;
        p.probe(0, 5, kCommWorld, &st, {"tour.v5.probe"});
        int v;
        p.recv(&v, 1, Datatype::kInt, 0, 5, kCommWorld, nullptr,
               {"tour.v5.consume"});
      } else {
        int v;
        p.recv(&v, 1, Datatype::kInt, 0, 5, kCommWorld, nullptr,
               {"tour.v5.recv"});
      }
    });
  }
  p.finalize();
}

void v6_body(Process& p) {
  p.init_thread(ThreadLevel::kMultiple);
  parallel(2, [&] { p.barrier(kCommWorld, {"tour.v6.barrier"}); });
  p.finalize();
}

}  // namespace

int main() {
  const Case cases[] = {
      {ViolationType::kInitialization,
       "V1 InitializationViolation: MPI off the main thread under FUNNELED",
       &v1_body},
      {ViolationType::kFinalization,
       "V2 FinalizationViolation: MPI_Finalize off the main thread", &v2_body},
      {ViolationType::kConcurrentRecv,
       "V3 ConcurrentRecvViolation: two receives share (source, tag, comm)",
       &v3_body},
      {ViolationType::kConcurrentRequest,
       "V4 ConcurrentRequestViolation: two waits on one request", &v4_body},
      {ViolationType::kProbe,
       "V5 ProbeViolation: probe races a receive on (source, tag)", &v5_body},
      {ViolationType::kCollectiveCall,
       "V6 CollectiveCallViolation: concurrent collectives on one comm",
       &v6_body},
  };

  int failures = 0;
  for (const Case& c : cases) {
    std::printf("=== %s ===\n", c.title);
    CheckConfig cfg;
    cfg.nranks = 2;
    cfg.block_timeout_ms = 1000;  // V6 may corrupt its collective; bounded.
    auto result = check_program(cfg, [&](Process& p) { c.body(p); });
    std::printf("%s\n", result.report.to_string().c_str());
    if (!result.report.has(c.type)) {
      std::printf("!! expected %s to be reported\n",
                  home::spec::violation_type_name(c.type));
      ++failures;
    }
  }
  std::printf("violation_tour: %s\n", failures == 0 ? "OK (6/6 classes reported)"
                                                    : "UNEXPECTED");
  return failures == 0 ? 0 : 1;
}
