// Scaling bench for the detection pipeline (the ISSUE-1 tentpole): frontier
// vs pairwise per-variable analysis over an events x threads x vars sweep,
// plus multi-threaded TraceLog emission throughput (sharded ingest).
//
// Modes:
//   bench_detect_scaling                  google-benchmark suite, then the
//                                         JSON summary sweep (one JSON object
//                                         per line via bench::JsonRow)
//   bench_detect_scaling --summary-only   skip the google-benchmark suite
//   bench_detect_scaling --smoke          fast functional check of the perf
//                                         path (frontier == pairwise verdicts,
//                                         sharded emit integrity); ctest runs
//                                         this at build time
//
// Sweep knobs: --max-events (largest events-per-variable point, default
// 16000), --threads, --vars, --reps.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/detect/race_detector.hpp"
#include "src/trace/trace_log.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

// Trace builders live in bench/fig_common.hpp (shared with bench_obs).
using bench::phased_trace;
using bench::racy_trace;

detect::RaceDetectorConfig algo_config(detect::DetectorAlgo algo,
                                       std::size_t analysis_threads = 1) {
  detect::RaceDetectorConfig cfg;
  cfg.algo = algo;
  cfg.analysis_threads = analysis_threads;
  return cfg;
}

// ------------------------------------------------- google-benchmark suite

void BM_DetectPhased(benchmark::State& state, detect::DetectorAlgo algo) {
  const auto events_per_var = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int vars = static_cast<int>(state.range(2));
  const auto events = phased_trace(events_per_var, threads, vars);
  const detect::RaceDetectorConfig cfg = algo_config(algo);
  for (auto _ : state) {
    auto report = detect::RaceDetector(cfg).analyze(events);
    benchmark::DoNotOptimize(report.total_pairs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}

void BM_DetectFrontier(benchmark::State& state) {
  BM_DetectPhased(state, detect::DetectorAlgo::kFrontier);
}
void BM_DetectPairwise(benchmark::State& state) {
  BM_DetectPhased(state, detect::DetectorAlgo::kPairwise);
}
// events-per-var x threads x vars.
BENCHMARK(BM_DetectFrontier)
    ->ArgsProduct({{1000, 4000, 16000}, {2, 8}, {4}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectPairwise)
    ->ArgsProduct({{1000, 4000}, {2, 8}, {4}})
    ->Unit(benchmark::kMillisecond);

void BM_DetectParallelVars(benchmark::State& state) {
  // Parallel per-variable fan-out, worker count = range(0).  Measured on the
  // pairwise engine, where per-variable work is heavy enough to fan out; the
  // frontier engine leaves the (serial) HB pass dominant, so extra workers
  // barely move it — see the frontier vs frontier-par rows in the summary.
  const auto events = phased_trace(1500, 4, 16);
  const detect::RaceDetectorConfig cfg = algo_config(
      detect::DetectorAlgo::kPairwise, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto report = detect::RaceDetector(cfg).analyze(events);
    benchmark::DoNotOptimize(report.total_pairs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_DetectParallelVars)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

trace::TraceLog* g_emit_log = nullptr;

void BM_ShardedEmitContended(benchmark::State& state) {
  // The BM_TraceEmit contention workload: every benchmark thread hammers one
  // shared log.  With per-thread shards the threads never touch the same
  // mutex on the hot path.
  if (state.thread_index() == 0) g_emit_log = new trace::TraceLog();
  for (auto _ : state) {
    trace::Event e;
    e.tid = state.thread_index();
    e.kind = trace::EventKind::kMemWrite;
    e.obj = 42;
    g_emit_log->emit(std::move(e));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    delete g_emit_log;
    g_emit_log = nullptr;
  }
}
BENCHMARK(BM_ShardedEmitContended)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// --------------------------------------------------------- JSON summary mode

double measure_detect_seconds(const std::vector<trace::Event>& events,
                              const detect::RaceDetectorConfig& cfg, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    auto report = detect::RaceDetector(cfg).analyze(events);
    benchmark::DoNotOptimize(report.total_pairs());
    const double seconds = timer.elapsed_seconds();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

void run_json_summary(const util::Flags& flags) {
  // Clamp the knobs so degenerate values (e.g. --max-events 0) can't leave
  // the sweep empty or divide by zero in the trace builders.
  const std::size_t max_events = std::max<std::size_t>(
      1000, static_cast<std::size_t>(std::max(0, flags.get_int("max-events",
                                                               16000))));
  const int threads = std::max(1, flags.get_int("threads", 8));
  const int vars = std::max(1, flags.get_int("vars", 4));
  const int reps = std::max(1, flags.get_int("reps", 2));

  std::vector<std::size_t> sweep;
  for (std::size_t n = std::max<std::size_t>(1000, max_events / 16);
       n <= max_events; n *= 4) {
    sweep.push_back(n);
  }

  std::printf("=== detect_scaling: analysis seconds vs events-per-variable "
              "(threads=%d vars=%d) ===\n", threads, vars);
  std::printf("%-22s", "events/var");
  for (std::size_t n : sweep) std::printf("%12zu", n);
  std::printf("\n");

  std::map<std::size_t, double> frontier_s, pairwise_s;
  struct Row {
    const char* name;
    detect::DetectorAlgo algo;
    std::size_t workers;
  };
  const Row rows[] = {
      {"frontier", detect::DetectorAlgo::kFrontier, 1},
      {"frontier-par", detect::DetectorAlgo::kFrontier, 0},
      {"pairwise", detect::DetectorAlgo::kPairwise, 1},
  };
  for (const Row& row : rows) {
    std::printf("%-22s", row.name);
    for (std::size_t n : sweep) {
      const auto events = phased_trace(n, threads, vars);
      const double seconds =
          measure_detect_seconds(events, algo_config(row.algo, row.workers),
                                 reps);
      if (row.algo == detect::DetectorAlgo::kFrontier && row.workers == 1) {
        frontier_s[n] = seconds;
      }
      if (row.algo == detect::DetectorAlgo::kPairwise) pairwise_s[n] = seconds;
      std::printf("%12.5f", seconds);
      bench::JsonRow("detect_scaling")
          .field("algo", row.name)
          .field("events_per_var", n)
          .field("threads", threads)
          .field("vars", vars)
          .field("trace_events", events.size())
          .field("seconds", seconds)
          .print(stderr);
    }
    std::printf("\n");
  }

  const std::size_t largest = sweep.back();
  const double speedup = frontier_s[largest] > 0.0
                             ? pairwise_s[largest] / frontier_s[largest]
                             : 0.0;
  std::printf("\nfrontier speedup at events/var=%zu: %.1fx "
              "(pairwise %.4fs vs frontier %.4fs)\n",
              largest, speedup, pairwise_s[largest], frontier_s[largest]);
  bench::JsonRow("detect_scaling")
      .field("algo", "speedup")
      .field("events_per_var", largest)
      .field("threads", threads)
      .field("vars", vars)
      .field("speedup", speedup)
      .print(stderr);
  std::printf("(JSON rows on stderr; expected shape: pairwise grows ~4x per "
              "sweep step squared, frontier near-linearly)\n");
}

// ----------------------------------------------------------------- smoke mode

/// Fast functional check of the perf path, run by ctest at build time: the
/// two algorithms must agree on phased and racy traces in every mode, and
/// the sharded log must survive contended emission intact.
int run_smoke() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "smoke FAIL: %s\n", what);
      ++failures;
    }
  };

  for (const auto& events :
       {phased_trace(400, 4, 6), racy_trace(200, 4, 6, 3),
        racy_trace(300, 3, 5, 7)}) {
    for (const detect::DetectorMode mode :
         {detect::DetectorMode::kHybrid, detect::DetectorMode::kLocksetOnly,
          detect::DetectorMode::kHbOnly}) {
      detect::RaceDetectorConfig frontier = algo_config(
          detect::DetectorAlgo::kFrontier, 2);
      frontier.mode = mode;
      detect::RaceDetectorConfig pairwise = algo_config(
          detect::DetectorAlgo::kPairwise, 1);
      pairwise.mode = mode;
      const auto fr = detect::RaceDetector(frontier).analyze(events);
      const auto pw = detect::RaceDetector(pairwise).analyze(events);
      expect(fr.verdicts().size() == pw.verdicts().size(),
             "verdict counts differ");
      for (const auto& [var, verdict] : fr.verdicts()) {
        const detect::VariableVerdict* other = pw.verdict(var);
        expect(other != nullptr && other->concurrent == verdict.concurrent,
               "frontier/pairwise verdict mismatch");
      }
    }
  }

  trace::TraceLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::Event e;
        e.kind = trace::EventKind::kMemWrite;
        log.emit(std::move(e));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  expect(log.size() == static_cast<std::size_t>(kThreads * kPerThread),
         "sharded emit lost events");
  const auto events = log.sorted_events();
  expect(events.size() == static_cast<std::size_t>(kThreads * kPerThread),
         "sorted_events size mismatch");
  bool ordered = true;
  for (std::size_t i = 1; i < events.size(); ++i) {
    ordered = ordered && events[i - 1].seq < events[i].seq;
  }
  expect(ordered, "seq is not a strict total order");

  if (failures == 0) std::printf("bench_detect_scaling --smoke: ok\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.get_bool("smoke", false)) return run_smoke();
  benchmark::Initialize(&argc, argv);
  if (!flags.get_bool("summary-only", false)) {
    benchmark::RunSpecifiedBenchmarks();
  }
  run_json_summary(flags);
  benchmark::Shutdown();
  return 0;
}
