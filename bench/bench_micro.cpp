// Micro-benchmarks (google-benchmark) of the primitives the tool's overhead
// is built from: vector-clock algebra, lockset checks, trace emission,
// message matching, collective rendezvous, and full detector passes.
#include <benchmark/benchmark.h>

#include "src/detect/lockset.hpp"
#include "src/detect/race_detector.hpp"
#include "src/detect/vector_clock.hpp"
#include "src/simmpi/mailbox.hpp"
#include "src/simmpi/universe.hpp"
#include "src/trace/trace_log.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace home;

void BM_VectorClockJoin(benchmark::State& state) {
  detect::VectorClock a, b;
  for (trace::Tid t = 0; t < static_cast<trace::Tid>(state.range(0)); ++t) {
    a.set(t, static_cast<std::uint64_t>(t * 3));
    b.set(t, static_cast<std::uint64_t>(t * 5 % 7));
  }
  for (auto _ : state) {
    detect::VectorClock c = a;
    c.join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(8)->Arg(64)->Arg(256);

void BM_VectorClockLeq(benchmark::State& state) {
  detect::VectorClock a, b;
  for (trace::Tid t = 0; t < static_cast<trace::Tid>(state.range(0)); ++t) {
    a.set(t, static_cast<std::uint64_t>(t));
    b.set(t, static_cast<std::uint64_t>(t + 1));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.leq(b));
}
BENCHMARK(BM_VectorClockLeq)->Arg(8)->Arg(64)->Arg(256);

void BM_LocksetDisjoint(benchmark::State& state) {
  std::vector<trace::ObjId> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(static_cast<trace::ObjId>(2 * i));
    b.push_back(static_cast<trace::ObjId>(2 * i + 1));
  }
  for (auto _ : state) benchmark::DoNotOptimize(trace::locksets_disjoint(a, b));
}
BENCHMARK(BM_LocksetDisjoint)->Arg(1)->Arg(4)->Arg(16);

void BM_TraceEmit(benchmark::State& state) {
  trace::TraceLog log;
  for (auto _ : state) {
    trace::Event e;
    e.tid = 1;
    e.kind = trace::EventKind::kMemWrite;
    e.obj = 42;
    log.emit(std::move(e));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmit);

void BM_MailboxDeliverMatch(benchmark::State& state) {
  simmpi::Mailbox mailbox;
  int payload = 7;
  for (auto _ : state) {
    auto recv = std::make_shared<simmpi::RequestState>(
        simmpi::RequestKind::kRecv, simmpi::next_request_id());
    recv->match_src = 0;
    recv->match_tag = 3;
    recv->match_comm = 1;
    recv->buf = &payload;
    recv->count = 1;
    recv->dt = simmpi::Datatype::kInt;
    mailbox.post_recv(recv);

    simmpi::Envelope msg;
    msg.src = 0;
    msg.tag = 3;
    msg.comm = 1;
    msg.dt = simmpi::Datatype::kInt;
    msg.count = 1;
    msg.msg_id = simmpi::next_message_id();
    msg.payload.resize(sizeof(int));
    mailbox.deliver(std::move(msg));
    benchmark::DoNotOptimize(recv->done());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MailboxDeliverMatch);

void BM_EraserStateMachine(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<trace::Event> events;
  for (int i = 0; i < 1024; ++i) {
    trace::Event e;
    e.seq = static_cast<trace::Seq>(i + 1);
    e.tid = static_cast<trace::Tid>(rng.next_below(4));
    e.kind = trace::EventKind::kMemWrite;
    e.obj = 100 + rng.next_below(16);
    if (rng.next_bool()) e.locks_held = {10};
    events.push_back(std::move(e));
  }
  for (auto _ : state) {
    detect::EraserStateMachine machine;
    for (const auto& e : events) machine.on_access(e);
    benchmark::DoNotOptimize(machine.reported_variables().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_EraserStateMachine);

void BM_RaceDetectorAnalyze(benchmark::State& state) {
  util::Rng rng(13);
  std::vector<trace::Event> events;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    trace::Event e;
    e.seq = static_cast<trace::Seq>(i + 1);
    e.tid = static_cast<trace::Tid>(rng.next_below(8));
    e.kind = rng.next_bool(0.8) ? trace::EventKind::kMemWrite
                                : trace::EventKind::kBarrier;
    e.obj = e.kind == trace::EventKind::kBarrier ? 900 + rng.next_below(4)
                                                 : 100 + rng.next_below(32);
    if (e.kind == trace::EventKind::kBarrier) e.aux = 8;
    events.push_back(std::move(e));
  }
  detect::RaceDetectorConfig cfg;
  cfg.max_pairs_per_var = 8;
  for (auto _ : state) {
    auto report = detect::RaceDetector(cfg).analyze(events);
    benchmark::DoNotOptimize(report.total_pairs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RaceDetectorAnalyze)->Arg(1000)->Arg(4000);

void BM_PingPong(benchmark::State& state) {
  // Round-trip latency of the substrate itself (2 ranks, blocking calls).
  for (auto _ : state) {
    simmpi::UniverseConfig cfg;
    cfg.nranks = 2;
    simmpi::Universe uni(cfg);
    uni.run([&](simmpi::Process& p) {
      int v = 0;
      for (int i = 0; i < 64; ++i) {
        if (p.rank() == 0) {
          p.send(&v, 1, simmpi::Datatype::kInt, 1, 0, simmpi::kCommWorld);
          p.recv(&v, 1, simmpi::Datatype::kInt, 1, 0, simmpi::kCommWorld);
        } else {
          p.recv(&v, 1, simmpi::Datatype::kInt, 0, 0, simmpi::kCommWorld);
          p.send(&v, 1, simmpi::Datatype::kInt, 0, 0, simmpi::kCommWorld);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_PingPong)->Unit(benchmark::kMillisecond);

void BM_CollectiveBarrier(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::UniverseConfig cfg;
    cfg.nranks = nranks;
    simmpi::Universe uni(cfg);
    uni.run([&](simmpi::Process& p) {
      for (int i = 0; i < 16; ++i) p.barrier(simmpi::kCommWorld);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          nranks);
}
BENCHMARK(BM_CollectiveBarrier)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
