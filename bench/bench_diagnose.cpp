// Provenance-engine bench (ISSUE-9): the cost of explaining a violation.
//
// Workload: a barrier-phased bulk trace (the NPB-like long-clean shape the
// detector benches share) with a small cluster of genuine concurrent-recv
// violations appended — the realistic mix where violations are rare and the
// trace is not.
//
// Experiments (one JSON row each, stdout and --json-out, default
// BENCH_diagnose.json):
//   diagnose_overhead   detect+match seconds with and without certificate
//                       building — acceptance gate: diagnosis adds < 5% to
//                       the analysis phase.
//   diagnose_cert_cost  per-certificate build microseconds and per-
//                       certificate paranoid verification microseconds
//                       (verification replays the full HB analysis, so it
//                       is priced separately and carries no gate).
//
// Modes:
//   bench_diagnose          full workload (1000 phases)
//   bench_diagnose --smoke  fast gate (300 phases); ctest runs this.
//
// Knobs: --phases, --threads, --vars, --clusters, --reps, --json-out.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/detect/race_detector.hpp"
#include "src/diagnose/provenance.hpp"
#include "src/spec/matcher.hpp"
#include "src/spec/monitored.hpp"
#include "src/trace/trace_log.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

/// Bulk + cluster workload in wrapper shape: `phases` barrier-separated
/// rotating writes over `vars` variables by `threads` worker tids, then
/// `clusters` pairs of same-(source,tag,comm) receives from two tids with a
/// distinct callsite pair per cluster (each pair is one V3 finding).
void build_workload(trace::TraceLog& log, int phases, int threads, int vars,
                    int clusters) {
  for (int phase = 0; phase < phases; ++phase) {
    for (int v = 0; v < vars; ++v) {
      trace::Event e;
      e.tid = static_cast<trace::Tid>(1 + (phase + v) % threads);
      e.kind = trace::EventKind::kMemWrite;
      e.obj = 100 + static_cast<trace::ObjId>(v);
      log.emit(std::move(e));
    }
    for (int t = 0; t < threads; ++t) {
      trace::Event e;
      e.tid = static_cast<trace::Tid>(1 + t);
      e.kind = trace::EventKind::kBarrier;
      e.obj = 9000 + static_cast<trace::ObjId>(phase);
      e.aux = static_cast<std::uint64_t>(threads);
      log.emit(std::move(e));
    }
  }
  for (int c = 0; c < clusters; ++c) {
    for (trace::Tid tid : {trace::Tid{1}, trace::Tid{2}}) {
      trace::MpiCallInfo info;
      info.type = trace::MpiCallType::kRecv;
      info.peer = 3;
      info.tag = 40 + c;  // per-cluster tag: one distinct violation each.
      info.comm = 1;
      info.provided = 3;
      info.callsite = log.strings().intern(
          "bench.cluster" + std::to_string(c) + ".t" + std::to_string(tid));
      trace::Event call;
      call.tid = tid;
      call.kind = trace::EventKind::kMpiCall;
      call.mpi = info;
      const trace::Seq seq = log.emit(std::move(call));
      for (spec::MonitoredVar var :
           spec::monitored_vars_for(trace::MpiCallType::kRecv)) {
        trace::Event write;
        write.tid = tid;
        write.kind = trace::EventKind::kMemWrite;
        write.obj = spec::monitored_var_id(0, var);
        write.aux = seq;
        log.emit(std::move(write));
      }
    }
  }
}

struct Output {
  std::FILE* json = nullptr;
  void emit(const bench::JsonRow& row) {
    row.print(stdout);
    if (json != nullptr) row.print(json);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  // The NPB-style apps this models keep dozens of shared arrays live per
  // phase, so the representative shape is var-dense; a var-sparse trace
  // understates the analysis phase the overhead is measured against.
  const int phases = flags.get_int("phases", smoke ? 300 : 1000);
  const int threads = flags.get_int("threads", 4);
  const int vars = flags.get_int("vars", 64);
  const int clusters = flags.get_int("clusters", 6);
  const int reps = flags.get_int("reps", smoke ? 5 : 7);

  const std::string json_path = flags.get("json-out", "BENCH_diagnose.json");
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_diagnose: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  Output out;
  out.json = json;
  bool ok = true;

  trace::TraceLog log;
  build_workload(log, phases, threads, vars, clusters);
  const std::vector<trace::Event> events = log.sorted_events();

  detect::HappensBeforeConfig hb_cfg;  // kHybrid detector: strong edges only.
  hb_cfg.lock_edges = false;
  diagnose::Options dopts;
  dopts.enabled = true;
  dopts.emit_flows = false;  // price the engine, not the telemetry ring.

  // ---------------------------------------------------- analysis baseline
  // Best-of-reps detect+match, then the same with certificate building: the
  // diagnosis phase runs off the finished HB index, so its cost is additive.
  double analyze_seconds = 1e9;
  double diagnose_seconds = 1e9;
  std::size_t violations_found = 0;
  std::size_t certificates = 0;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    detect::RaceDetector detector;
    const detect::ConcurrencyReport report = detector.analyze(events);
    spec::Matcher matcher(&log.strings());
    const std::vector<spec::Violation> violations = matcher.match(report);
    const double base = timer.elapsed_seconds();
    analyze_seconds = std::min(analyze_seconds, base);
    violations_found = violations.size();

    util::Stopwatch dtimer;
    const diagnose::ProvenanceReport provenance = diagnose::diagnose_violations(
        report.hb(), violations, &log.strings(), hb_cfg, dopts);
    diagnose_seconds = std::min(diagnose_seconds, dtimer.elapsed_seconds());
    certificates = provenance.certificates.size();
  }
  const double overhead_pct =
      analyze_seconds > 0.0 ? diagnose_seconds / analyze_seconds * 100.0 : 0.0;

  out.emit(bench::JsonRow("diagnose_overhead")
               .field("events", events.size())
               .field("violations", violations_found)
               .field("certificates", certificates)
               .field("analyze_seconds", analyze_seconds)
               .field("diagnose_seconds", diagnose_seconds)
               .field("overhead_pct", overhead_pct));
  if (certificates == 0 ||
      certificates != static_cast<std::size_t>(clusters)) {
    std::fprintf(stderr, "FAIL: expected %d certificates, built %zu\n",
                 clusters, certificates);
    ok = false;
  }
  if (overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: diagnosis overhead %.2f%% >= 5%% gate "
                 "(%.4fs on a %.4fs analysis)\n",
                 overhead_pct, diagnose_seconds, analyze_seconds);
    ok = false;
  }

  // ------------------------------------------------- per-certificate cost
  // Build once more for the per-unit numbers and the paranoid verify price.
  {
    detect::RaceDetector detector;
    const detect::ConcurrencyReport report = detector.analyze(events);
    spec::Matcher matcher(&log.strings());
    const std::vector<spec::Violation> violations = matcher.match(report);

    util::Stopwatch build_timer;
    const diagnose::ProvenanceReport provenance = diagnose::diagnose_violations(
        report.hb(), violations, &log.strings(), hb_cfg, dopts);
    const double build_seconds = build_timer.elapsed_seconds();

    util::Stopwatch verify_timer;
    std::size_t verified = 0;
    for (const diagnose::Certificate& cert : provenance.certificates) {
      std::string why;
      if (diagnose::verify_certificate(cert, events, &log.strings(), hb_cfg,
                                       &why)) {
        ++verified;
      } else {
        std::fprintf(stderr, "FAIL: certificate %s did not verify: %s\n",
                     cert.key.c_str(), why.c_str());
        ok = false;
      }
    }
    const double verify_seconds = verify_timer.elapsed_seconds();
    const double n = provenance.certificates.empty()
                         ? 1.0
                         : static_cast<double>(provenance.certificates.size());
    out.emit(bench::JsonRow("diagnose_cert_cost")
                 .field("certificates", provenance.certificates.size())
                 .field("verified", verified)
                 .field("build_us_per_cert", build_seconds * 1e6 / n)
                 .field("verify_us_per_cert", verify_seconds * 1e6 / n));
  }

  std::fclose(json);
  std::printf("%s (json: %s)\n", ok ? "OK" : "FAILED", json_path.c_str());
  return ok ? 0 : 1;
}
