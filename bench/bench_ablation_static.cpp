// E8 — ablation of the paper's key overhead-reduction idea (Section IV.C):
// selective instrumentation driven by the static analysis vs systematic
// instrumentation of every MPI call.  Prints per-process-count runtimes and
// the number of instrumented/skipped calls for LU-MZ under HOME.
#include <cstdio>

#include "bench/fig_common.hpp"
#include "src/home/session.hpp"
#include "src/homp/runtime.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;
using namespace home::apps;

struct Point {
  double seconds = 0.0;
  std::size_t instrumented = 0;
  std::size_t skipped = 0;
};

Point run_home_with_filter(InstrumentFilter filter, const AppConfig& cfg,
                           int reps) {
  Point best;
  best.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    SessionConfig scfg;
    scfg.filter = filter;
    Session session(scfg);
    simmpi::UniverseConfig ucfg;
    ucfg.nranks = cfg.nranks;
    ucfg.block_timeout_ms = cfg.block_timeout_ms;
    session.configure(ucfg);
    simmpi::Universe universe(ucfg);
    session.attach(universe);
    homp::set_default_threads(cfg.nthreads);
    util::Stopwatch timer;
    universe.run([&](simmpi::Process& p) { run_app_rank(cfg, p); });
    const double seconds = timer.elapsed_seconds();
    session.detach(universe);
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.instrumented = session.wrappers().instrumented_calls();
      best.skipped = session.wrappers().skipped_calls();
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = home::util::Flags::parse(argc, argv);
  const auto sweep = home::bench::process_sweep(flags);
  const int reps = flags.get_int("reps", 3);

  std::printf("=== E8 ablation: selective (static-analysis-filtered) vs "
              "systematic instrumentation, LU-MZ ===\n");
  std::printf("%-6s  %-34s %-34s %s\n", "procs",
              "selective: time / instr / skipped",
              "systematic: time / instr / skipped", "time saved");

  for (int p : sweep) {
    AppConfig cfg = home::bench::figure_config(AppKind::kLU, p, flags);
    const Point selective =
        run_home_with_filter(InstrumentFilter::kParallelOnly, cfg, reps);
    const Point systematic = run_home_with_filter(InstrumentFilter::kAll, cfg, reps);
    std::printf("%-6d  %9.4fs / %6zu / %6zu        %9.4fs / %6zu / %6zu        %5.1f%%\n",
                p, selective.seconds, selective.instrumented, selective.skipped,
                systematic.seconds, systematic.instrumented, systematic.skipped,
                100.0 * (systematic.seconds - selective.seconds) /
                    systematic.seconds);
  }
  std::printf("\n(the paper's claim: filtering error-free serial regions "
              "significantly reduces dynamic-analysis overhead)\n");
  return 0;
}
