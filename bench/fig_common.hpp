// Shared driver for the Figure 4/5/6/7 reproductions: sweep the MPI process
// count and print one runtime row per tool, like the paper's bar charts.
// Also provides the one-JSON-object-per-line emitter the scaling benches use
// so their measurements stay machine-comparable across runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/trace/event.hpp"
#include "src/util/flags.hpp"
#include "src/util/rng.hpp"

namespace home::bench {

// ------------------------------------------------ synthetic trace builders
// Shared by bench_detect_scaling (the ISSUE-1 sweeps) and bench_obs (the
// telemetry-overhead gate), so both benches measure the same workload.

/// Barrier-phased race-free trace: in every phase each variable is written by
/// exactly one thread (rotating across phases), then all threads arrive at a
/// barrier.  Every cross-thread access pair is barrier-ordered, so there are
/// no races: the pairwise engine can never early-break on its pair cap and
/// pays the full O(k^2) vector-clock comparisons per variable — exactly the
/// NPB-style long-clean-trace shape that motivated the frontier detector.
inline std::vector<trace::Event> phased_trace(std::size_t events_per_var,
                                              int threads, int vars) {
  std::vector<trace::Event> events;
  const std::size_t phases = events_per_var;
  events.reserve(phases * static_cast<std::size_t>(threads + vars));
  trace::Seq seq = 1;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    for (int v = 0; v < vars; ++v) {
      trace::Event e;
      e.seq = seq++;
      e.tid = static_cast<trace::Tid>(
          (phase + static_cast<std::size_t>(v)) %
          static_cast<std::size_t>(threads));
      e.kind = trace::EventKind::kMemWrite;
      e.obj = 100 + static_cast<trace::ObjId>(v);
      events.push_back(std::move(e));
    }
    for (int t = 0; t < threads; ++t) {
      trace::Event e;
      e.seq = seq++;
      e.tid = t;
      e.kind = trace::EventKind::kBarrier;
      e.obj = 9000 + static_cast<trace::ObjId>(phase);
      e.aux = static_cast<std::uint64_t>(threads);
      events.push_back(std::move(e));
    }
  }
  return events;
}

/// Racy variant: no barriers, mixed locksets — verdicts are non-trivial.
inline std::vector<trace::Event> racy_trace(std::size_t events_per_var,
                                            int threads, int vars,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::Event> events;
  const std::size_t total = events_per_var * static_cast<std::size_t>(vars);
  events.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    trace::Event e;
    e.seq = static_cast<trace::Seq>(i + 1);
    e.tid = static_cast<trace::Tid>(rng.next_below(
        static_cast<std::uint64_t>(threads)));
    e.kind = rng.next_bool(0.7) ? trace::EventKind::kMemWrite
                                : trace::EventKind::kMemRead;
    e.obj = 100 + rng.next_below(static_cast<std::uint64_t>(vars));
    if (rng.next_bool(0.4)) e.locks_held = {500 + rng.next_below(2)};
    events.push_back(std::move(e));
  }
  return events;
}

/// Builds one flat JSON object and prints it as a single line, e.g.
///   JsonRow("detect_scaling").field("algo", "frontier")
///       .field("events", 4000).field("seconds", 0.01).print();
/// -> {"bench":"detect_scaling","algo":"frontier","events":4000,...}
/// Values are limited to what the benches need: strings, integers, doubles.
class JsonRow {
 public:
  explicit JsonRow(const std::string& bench) {
    body_ = "{\"bench\":\"" + escaped(bench) + "\"";
  }

  JsonRow& field(const char* key, const std::string& value) {
    body_ += std::string(",\"") + key + "\":\"" + escaped(value) + "\"";
    return *this;
  }
  JsonRow& field(const char* key, const char* value) {
    return field(key, std::string(value));
  }
  JsonRow& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    body_ += std::string(",\"") + key + "\":" + buf;
    return *this;
  }
  JsonRow& field(const char* key, std::size_t value) {
    body_ += std::string(",\"") + key + "\":" + std::to_string(value);
    return *this;
  }
  JsonRow& field(const char* key, int value) {
    body_ += std::string(",\"") + key + "\":" + std::to_string(value);
    return *this;
  }

  void print(std::FILE* out = stdout) const {
    std::fprintf(out, "%s}\n", body_.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  std::string body_;
};

inline std::vector<int> process_sweep(const util::Flags& flags) {
  const int max_p = flags.get_int("max-procs", 64);
  std::vector<int> sweep;
  for (int p = 2; p <= max_p; p *= 2) sweep.push_back(p);
  return sweep;
}

/// The figure workload: clean app (no injected sleeps distorting timing),
/// sized so per-point runtimes are stable on one machine.
inline apps::AppConfig figure_config(apps::AppKind kind, int nranks,
                                     const util::Flags& flags) {
  apps::AppConfig cfg = apps::clean_config(kind, nranks);
  cfg.grid = flags.get_int("grid", 36);
  cfg.zones_per_rank = flags.get_int("zones", 2);
  cfg.iterations = flags.get_int("iters", 10);
  return cfg;
}

/// Median-of-reps runtime for one (tool, config) point.
inline double measure_seconds(apps::Tool tool, const apps::AppConfig& cfg,
                              int reps) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    times.push_back(apps::run_with_tool(tool, cfg).run_seconds);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Print one figure: rows = tools, columns = process counts.
inline void run_figure(const char* figure_name, apps::AppKind kind,
                       const util::Flags& flags) {
  const std::vector<int> sweep = process_sweep(flags);
  const int reps = flags.get_int("reps", 3);

  std::printf("=== %s: %s execution time (seconds) vs MPI processes ===\n",
              figure_name, apps::app_kind_name(kind));
  std::printf("%-8s", "procs");
  for (int p : sweep) std::printf("%10d", p);
  std::printf("\n");

  std::vector<double> base_times;
  for (apps::Tool tool : {apps::Tool::kBase, apps::Tool::kHome,
                          apps::Tool::kMarmot, apps::Tool::kItc}) {
    std::printf("%-8s", apps::tool_name(tool));
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      apps::AppConfig cfg = figure_config(kind, sweep[i], flags);
      const double seconds = measure_seconds(tool, cfg, reps);
      if (tool == apps::Tool::kBase) base_times.push_back(seconds);
      std::printf("%10.4f", seconds);
    }
    std::printf("\n");
  }

  std::printf("\n(paper shape: Base < HOME < MARMOT < ITC at every process "
              "count; HOME within ~16-45%% of Base)\n\n");
}

}  // namespace home::bench
