// E7 — Figure 7: average checking overhead vs process count, averaged over
// the three mini-apps.  Paper bands: HOME 16-45%, Marmot 15-56%, ITC up to
// around 200%.
#include <cstdio>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace home::apps;
  const auto flags = home::util::Flags::parse(argc, argv);
  const auto sweep = home::bench::process_sweep(flags);
  const int reps = flags.get_int("reps", 3);
  const AppKind kinds[] = {AppKind::kLU, AppKind::kBT, AppKind::kSP};

  std::printf("=== Figure 7: average overhead vs Base across LU/BT/SP ===\n");
  std::printf("%-8s", "procs");
  for (int p : sweep) std::printf("%9d%%", p);
  std::printf("\n");

  for (Tool tool : {Tool::kHome, Tool::kMarmot, Tool::kItc}) {
    std::printf("%-8s", tool_name(tool));
    for (int p : sweep) {
      double overhead_sum = 0.0;
      for (AppKind kind : kinds) {
        AppConfig cfg = home::bench::figure_config(kind, p, flags);
        const double base = home::bench::measure_seconds(Tool::kBase, cfg, reps);
        const double tooled = home::bench::measure_seconds(tool, cfg, reps);
        overhead_sum += (tooled - base) / base;
      }
      std::printf("%9.0f%%", 100.0 * overhead_sum / 3.0);
    }
    std::printf("\n");
  }
  std::printf("\n(paper bands: HOME 16-45%%, MARMOT 15-56%%, ITC up to ~200%%)\n");
  return 0;
}
