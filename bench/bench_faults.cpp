// Fault-injection & resilience bench (ISSUE-10): what the layer costs when
// it is OFF, and what it delivers when it is ON.
//
// Experiments (one JSON row each, stdout and --json-out, default
// BENCH_faults.json):
//   faults_hook_disabled   ns per fault hook hit with no Injector installed
//                          (one relaxed load + branch — the path every
//                          production run pays), and the implied overhead on
//                          an uncontrolled hidden-race run — acceptance
//                          gate < 5%.
//   faults_wal_salvage     WAL salvage rate: events recovered from a trace
//                          WAL truncated at 25/50/75/100% of its bytes
//                          (the crash-safety payoff EXPERIMENTS.md tables).
//   faults_injected_sweep  schedules/sec of a delay+stall injected sweep of
//                          the hidden-race app under a watchdog — the sweep
//                          must complete (no stall) with zero crashes.
//
// Modes:
//   bench_faults           full run (16 injected schedules)
//   bench_faults --smoke   fast gate: disabled-hook overhead < 5%, salvage
//                          recovers a truncated WAL's prefix, a 6-schedule
//                          injected sweep completes; ctest runs this.
//
// Knobs: --schedules, --reps, --json-out.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/fig_common.hpp"
#include "src/apps/hidden_race.hpp"
#include "src/explore/sweeper.hpp"
#include "src/faults/injector.hpp"
#include "src/trace/trace_io.hpp"
#include "src/trace/wal.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

explore::Sweeper::RankMain hidden_main() {
  return [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
}

explore::SweepConfig hidden_config(explore::StrategyKind strategy,
                                   int schedules) {
  explore::SweepConfig cfg;
  cfg.nranks = apps::kHiddenRaceRanks;
  cfg.nthreads = 2;
  cfg.schedules = schedules;
  cfg.strategy = strategy;
  return cfg;
}

/// ns per fault hook hit on the disabled fast path; measured over the two
/// hottest hook flavours (per-MPI-call and per-queue-consume).
double disabled_hook_ns(int reps) {
  util::Stopwatch timer;
  for (int i = 0; i < reps; ++i) {
    faults::mpi_call_point(0, "bench.site");
    faults::queue_consume_point("bench.site");
  }
  return timer.elapsed_seconds() * 1e9 / (2.0 * reps);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Output {
  std::FILE* json = nullptr;
  void emit(const bench::JsonRow& row) {
    row.print(stdout);
    if (json != nullptr) row.print(json);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int schedules = flags.get_int("schedules", smoke ? 6 : 16);
  const int reps = flags.get_int("reps", smoke ? 2000000 : 20000000);

  const std::string json_path = flags.get("json-out", "BENCH_faults.json");
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_faults: cannot write %s\n", json_path.c_str());
    return 1;
  }
  Output out;
  out.json = json;
  bool ok = true;

  // ---------------------------------------------- disabled hook fast path
  disabled_hook_ns(reps / 10);  // warm-up.
  const double hook_ns = disabled_hook_ns(reps);

  // Implied overhead on an uncontrolled hidden-race run: the fault hooks
  // sit on the same instrumented operations the explore hooks count, so
  // one probe run's hook_hits is the per-run hit volume.
  util::Stopwatch base_timer;
  const int base_reps = smoke ? 5 : 20;
  for (int i = 0; i < base_reps; ++i) {
    explore::SweepConfig cfg = hidden_config(explore::StrategyKind::kNone, 0);
    explore::Sweeper(cfg).run(hidden_main());
  }
  const double base_seconds = base_timer.elapsed_seconds() / base_reps;
  explore::SweepConfig probe_cfg =
      hidden_config(explore::StrategyKind::kNone, 1);
  const explore::SweepResult probe =
      explore::Sweeper(probe_cfg).run(hidden_main());
  const double hits_per_run =
      probe.schedules_run > 1
          ? static_cast<double>(probe.hook_hits) / (probe.schedules_run - 1)
          : static_cast<double>(probe.hook_hits);
  const double overhead_pct =
      base_seconds > 0.0
          ? hits_per_run * hook_ns / (base_seconds * 1e9) * 100.0
          : 0.0;

  out.emit(bench::JsonRow("faults_hook_disabled")
               .field("hook_ns", hook_ns)
               .field("hits_per_run", hits_per_run)
               .field("baseline_run_seconds", base_seconds)
               .field("overhead_pct", overhead_pct));
  if (overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: disabled fault-hook overhead %.3f%% >= 5%% gate "
                 "(%.2f ns/hit, %.0f hits/run)\n",
                 overhead_pct, hook_ns, hits_per_run);
    ok = false;
  }

  // ------------------------------------------------------- WAL salvage rate
  // One instrumented run streamed into a WAL, then truncated at byte
  // fractions: how much of the trace the salvage loader gives back.
  const std::string wal_path = "bench_faults_wal.bin";
  {
    explore::SweepConfig cfg = hidden_config(explore::StrategyKind::kNone, 0);
    cfg.session.wal_path = wal_path;
    explore::Sweeper(cfg).run(hidden_main());
  }
  const std::string wal_bytes = slurp(wal_path);
  std::remove(wal_path.c_str());
  trace::WalSalvage full_salvage;
  {
    std::istringstream in(wal_bytes);
    trace::salvage_wal(in, &full_salvage);
  }
  const double total_events = static_cast<double>(full_salvage.events);
  bool salvage_monotone = true;
  std::size_t prev = 0;
  bench::JsonRow salvage_row("faults_wal_salvage");
  salvage_row.field("wal_bytes", wal_bytes.size())
      .field("events_total", full_salvage.events);
  const int fractions[] = {25, 50, 75, 100};
  for (int pct : fractions) {
    const std::size_t cut = wal_bytes.size() * pct / 100;
    std::istringstream in(wal_bytes.substr(0, cut));
    trace::WalSalvage salvage;
    trace::salvage_wal(in, &salvage);
    if (salvage.events < prev) salvage_monotone = false;
    prev = salvage.events;
    char key[32];
    std::snprintf(key, sizeof key, "recovered_pct_at_%d", pct);
    salvage_row.field(key, total_events > 0.0
                               ? 100.0 * salvage.events / total_events
                               : 0.0);
  }
  out.emit(salvage_row);
  if (!salvage_monotone || full_salvage.events == 0 ||
      !full_salvage.clean()) {
    std::fprintf(stderr,
                 "FAIL: WAL salvage not monotone/clean (events=%zu)\n",
                 full_salvage.events);
    ok = false;
  }

  // ------------------------------------------------------ injected sweep
  // Delay + stall injection under a watchdog: the resilience machinery must
  // carry the sweep to completion without a stall or a crash.
  explore::SweepConfig icfg =
      hidden_config(explore::StrategyKind::kWildcardReorder, schedules);
  faults::FaultSpec spec;
  spec.msg_delay_p = 0.3;
  spec.rank_stall_p = 0.2;
  icfg.session.faults.enabled = true;
  icfg.session.faults.spec = spec;
  icfg.session.faults.seed = 1;
  icfg.schedule_timeout_ms = 20000;
  icfg.max_retries = 1;
  const explore::SweepResult sweep = explore::Sweeper(icfg).run(hidden_main());
  const double rate =
      sweep.seconds > 0.0 ? sweep.schedules_run / sweep.seconds : 0.0;
  out.emit(bench::JsonRow("faults_injected_sweep")
               .field("schedules", sweep.schedules_run)
               .field("seconds", sweep.seconds)
               .field("schedules_per_sec", rate)
               .field("timeouts", sweep.timeouts)
               .field("crashes", sweep.crashes)
               .field("retries", sweep.retries)
               .field("unique_keys", sweep.findings.size()));
  if (sweep.schedules_run != schedules + 1 || sweep.crashes > 0) {
    std::fprintf(stderr,
                 "FAIL: injected sweep did not complete cleanly "
                 "(run=%d, crashes=%d)\n",
                 sweep.schedules_run, sweep.crashes);
    ok = false;
  }

  std::fclose(json);
  std::printf("%s (json: %s)\n", ok ? "OK" : "FAILED", json_path.c_str());
  return ok ? 0 : 1;
}
