// E4 — Figure 4: LU-MZ hybrid MPI/OpenMP execution time vs process count
// for Base / HOME / MARMOT / ITC.
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  const auto flags = home::util::Flags::parse(argc, argv);
  home::bench::run_figure("Figure 4", home::apps::AppKind::kLU, flags);
  return 0;
}
