// Extension bench: overhead vs OpenMP thread count.
//
// Section V.A of the paper pins the thread count to 2 because "the overhead
// of Intel Thread Checker would be very high with number increasing of
// threads in processes".  This bench sweeps the team size and shows how each
// tool's overhead responds: ITC monitors every thread's memory accesses, so
// its cost scales with the thread count, while HOME's monitored-variable
// instrumentation grows only with the (fixed) number of MPI calls.
#include <cstdio>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace home::apps;
  const auto flags = home::util::Flags::parse(argc, argv);
  const int nranks = flags.get_int("nranks", 8);
  const int reps = flags.get_int("reps", 3);

  std::printf("=== overhead vs OpenMP threads per rank (LU-MZ, %d ranks) ===\n",
              nranks);
  std::printf("%-8s", "threads");
  const int sweep[] = {1, 2, 4, 8};
  for (int t : sweep) std::printf("%9d%%", t);
  std::printf("\n");

  for (Tool tool : {Tool::kHome, Tool::kMarmot, Tool::kItc}) {
    std::printf("%-8s", tool_name(tool));
    for (int t : sweep) {
      AppConfig cfg = home::bench::figure_config(AppKind::kLU, nranks, flags);
      cfg.nthreads = t;
      const double base = home::bench::measure_seconds(Tool::kBase, cfg, reps);
      const double tooled = home::bench::measure_seconds(tool, cfg, reps);
      std::printf("%9.0f%%", 100.0 * (tooled - base) / base);
    }
    std::printf("\n");
  }
  std::printf("\n(the paper fixes 2 threads because ITC's overhead grows "
              "steeply with thread count)\n");
  return 0;
}
