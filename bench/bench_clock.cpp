// Clock-engine bench (the ISSUE-6 tentpole): epoch stamps + interned clocks
// vs the PR-1 full-vector baseline.
//
// Three experiments, each one JSON row per sweep point (stdout and
// --json-out, default BENCH_clock.json):
//   clock_micro     join/leq/== ns/op on vector clocks at 2..128 threads
//   clock_sweep     end-to-end frontier detection over the barrier-phased
//                   race-free trace (the NPB long-clean-trace shape) at 64
//                   threads, epoch vs vector engine
//   clock_resident  streamed frontier resident clock-bytes at 64 threads,
//                   epoch vs vector, on both the clean and the racy trace
//
// Modes:
//   bench_clock            full sweep (acceptance: >= 3x sweep speedup and
//                          >= 5x lower resident clock-bytes at 64 threads)
//   bench_clock --smoke    fast functional gate: engines verdict-identical,
//                          epoch path no slower than vector, resident
//                          clock-bytes >= 5x smaller; ctest runs this
//
// Knobs: --threads (default 64), --vars, --phases, --reps, --json-out.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/detect/clock_arena.hpp"
#include "src/detect/incremental.hpp"
#include "src/detect/race_detector.hpp"
#include "src/util/flags.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

// --------------------------------------------------------------- micro ops

struct MicroTimes {
  double join_ns = 0;
  double leq_ns = 0;
  double eq_ns = 0;
  std::uint64_t sink = 0;  ///< defeats dead-code elimination; reported.
};

MicroTimes micro(int threads, int reps) {
  util::Rng rng(static_cast<std::uint64_t>(threads) * 977 + 3);
  detect::VectorClock a;
  detect::VectorClock b;
  for (int t = 0; t < threads; ++t) {
    a.set(static_cast<trace::Tid>(t), rng.next_below(1000) + 1);
    b.set(static_cast<trace::Tid>(t), rng.next_below(1000) + 1);
  }
  MicroTimes out;
  util::Stopwatch timer;
  for (int r = 0; r < reps; ++r) {
    detect::VectorClock j = a;
    j.join(b);
    out.sink += j.get(static_cast<trace::Tid>(r % threads));
  }
  out.join_ns = timer.elapsed_seconds() * 1e9 / reps;
  timer.reset();
  for (int r = 0; r < reps; ++r) {
    out.sink += a.leq(b) ? 1 : 0;
    out.sink += b.leq(a) ? 1 : 0;
  }
  out.leq_ns = timer.elapsed_seconds() * 1e9 / (2 * reps);
  timer.reset();
  for (int r = 0; r < reps; ++r) out.sink += (a == b) ? 1 : 0;
  out.eq_ns = timer.elapsed_seconds() * 1e9 / reps;
  return out;
}

// -------------------------------------------- end-to-end frontier sweep

using SeqPair = std::pair<trace::Seq, trace::Seq>;

std::map<trace::ObjId, std::vector<SeqPair>> report_pairs(
    const detect::ConcurrencyReport& report) {
  std::map<trace::ObjId, std::vector<SeqPair>> out;
  for (const auto& [var, verdict] : report.verdicts()) {
    auto& pairs = out[var];
    for (const detect::ConcurrentPair& p : verdict.pairs) {
      pairs.emplace_back(report.hb().events()[p.first].seq,
                         report.hb().events()[p.second].seq);
    }
  }
  return out;
}

struct SweepRun {
  double seconds = 0;
  std::size_t pairs_checked = 0;
  std::size_t epoch_hits = 0;
  std::map<trace::ObjId, std::vector<SeqPair>> pairs;
};

SweepRun run_sweep(const std::vector<trace::Event>& events,
                   detect::ClockEngine engine) {
  detect::RaceDetectorConfig cfg;
  cfg.clock = engine;
  cfg.analysis_threads = 1;  // serial: measure the engine, not the pool.
  util::Stopwatch timer;
  const detect::ConcurrencyReport report =
      detect::RaceDetector(cfg).analyze(events);
  SweepRun run;
  run.seconds = timer.elapsed_seconds();
  for (const auto& [var, verdict] : report.verdicts()) {
    run.pairs_checked += verdict.pairs_checked;
    run.epoch_hits += verdict.epoch_hits;
  }
  run.pairs = report_pairs(report);
  return run;
}

// ---------------------------------------- streamed resident clock-bytes

struct ResidentRun {
  std::size_t peak_frontier_clock_bytes = 0;
  std::size_t peak_hb_clock_bytes = 0;
  std::size_t promotions = 0;
  std::size_t racy_pairs = 0;
};

ResidentRun run_resident(const std::vector<trace::Event>& events, int threads,
                         detect::ClockEngine engine,
                         std::size_t retire_every) {
  detect::IncrementalHb hb;
  for (int t = 0; t < threads; ++t) hb.declare_thread(static_cast<trace::Tid>(t));
  detect::RaceDetectorConfig cfg;
  cfg.clock = engine;
  detect::IncrementalFrontier frontier(cfg);
  ResidentRun run;
  std::vector<detect::IncrementalFrontier::PairHit> hits;
  std::size_t since_retire = 0;
  std::size_t since_sample = 0;
  for (const trace::Event& e : events) {
    const detect::StampView stamp = hb.advance(e);
    if (e.is_access()) {
      auto rec = std::make_shared<detect::OnlineAccess>();
      rec->seq = e.seq;
      rec->tid = e.tid;
      rec->write = e.is_write();
      rec->locks = e.locks_held;
      hits.clear();
      frontier.on_access(e.obj, std::move(rec), stamp, &hits);
      run.racy_pairs += hits.size();
    }
    if (++since_sample >= 64) {  // sampling cadence mirrors OnlineAnalyzer.
      since_sample = 0;
      run.peak_frontier_clock_bytes = std::max(run.peak_frontier_clock_bytes,
                                               frontier.resident_clock_bytes());
      run.peak_hb_clock_bytes =
          std::max(run.peak_hb_clock_bytes, hb.resident_clock_bytes());
    }
    if (retire_every != 0 && ++since_retire >= retire_every) {
      since_retire = 0;
      detect::VectorClock wm;
      if (hb.watermark(&wm)) {
        frontier.retire(wm);
        hb.retire(wm);
        detect::ClockArena::global().compact();
      }
    }
  }
  // Catch the final state too (short traces may never hit the cadence).
  run.peak_frontier_clock_bytes =
      std::max(run.peak_frontier_clock_bytes, frontier.resident_clock_bytes());
  run.peak_hb_clock_bytes =
      std::max(run.peak_hb_clock_bytes, hb.resident_clock_bytes());
  run.promotions = frontier.epoch_promotions();
  return run;
}

// ------------------------------------------------------------------ main

struct Output {
  std::FILE* json = nullptr;  ///< BENCH_clock.json (always written).
  bool echo = false;          ///< also echo rows to stdout (full mode).

  void emit(const bench::JsonRow& row) const {
    if (json != nullptr) row.print(json);
    if (echo) row.print();
  }
};

void micro_rows(const Output& out, int reps) {
  for (int threads = 2; threads <= 128; threads *= 2) {
    const MicroTimes t = micro(threads, reps);
    bench::JsonRow row("clock_micro");
    row.field("threads", threads)
        .field("join_ns", t.join_ns)
        .field("leq_ns", t.leq_ns)
        .field("eq_ns", t.eq_ns)
        .field("sink", t.sink);
    out.emit(row);
  }
}

/// Emits the sweep + resident rows; returns vector_seconds / epoch_seconds
/// (0 on verdict mismatch, which also fails the caller's gate).
double engine_rows(const Output& out, int threads, int vars,
                   std::size_t phases, int reps, bool* verdicts_equal,
                   std::size_t* epoch_bytes, std::size_t* vector_bytes) {
  const std::vector<trace::Event> clean =
      bench::phased_trace(phases, threads, vars);

  SweepRun epoch;
  SweepRun vector;
  epoch.seconds = vector.seconds = 1e100;
  // The HB index build (advance + stamp materialization) is identical under
  // both engines; timing it separately isolates the sweep the acceptance
  // gate is about.  analyze() under kHybrid uses the default HB config.
  double hb_seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    const SweepRun e = run_sweep(clean, detect::ClockEngine::kEpoch);
    if (e.seconds < epoch.seconds) epoch = e;
    const SweepRun v = run_sweep(clean, detect::ClockEngine::kVector);
    if (v.seconds < vector.seconds) vector = v;
    util::Stopwatch timer;
    const detect::HbIndex hb =
        detect::HappensBeforeAnalysis().run(std::vector<trace::Event>(clean));
    hb_seconds = std::min(hb_seconds, timer.elapsed_seconds());
  }
  *verdicts_equal = epoch.pairs == vector.pairs;
  const double floor = 1e-9;  // clamp: subtraction can go sub-noise.
  const double epoch_sweep = std::max(epoch.seconds - hb_seconds, floor);
  const double vector_sweep = std::max(vector.seconds - hb_seconds, floor);
  const double speedup = vector_sweep / epoch_sweep;
  {
    bench::JsonRow row("clock_sweep");
    row.field("threads", threads)
        .field("vars", vars)
        .field("events", clean.size())
        .field("epoch_seconds", epoch.seconds)
        .field("vector_seconds", vector.seconds)
        .field("hb_seconds", hb_seconds)
        .field("epoch_sweep_seconds", epoch_sweep)
        .field("vector_sweep_seconds", vector_sweep)
        .field("total_speedup", vector.seconds / epoch.seconds)
        .field("sweep_speedup", speedup)
        .field("pairs_checked", epoch.pairs_checked)
        .field("epoch_hits", epoch.epoch_hits)
        .field("verdicts_equal", *verdicts_equal ? 1 : 0);
    out.emit(row);
  }

  // Resident clock bytes: the clean stream is the headline (epoch keeps
  // 16-byte stamps; vector pins a full private clock per record), the racy
  // stream shows promotions + arena sharing under real concurrency.
  const ResidentRun clean_epoch =
      run_resident(clean, threads, detect::ClockEngine::kEpoch, 256);
  const ResidentRun clean_vector =
      run_resident(clean, threads, detect::ClockEngine::kVector, 256);
  *epoch_bytes = clean_epoch.peak_frontier_clock_bytes;
  *vector_bytes = clean_vector.peak_frontier_clock_bytes;
  {
    bench::JsonRow row("clock_resident");
    row.field("workload", "phased")
        .field("threads", threads)
        .field("events", clean.size())
        .field("epoch_clock_bytes", clean_epoch.peak_frontier_clock_bytes)
        .field("vector_clock_bytes", clean_vector.peak_frontier_clock_bytes)
        .field("hb_clock_bytes", clean_epoch.peak_hb_clock_bytes)
        .field("promotions", clean_epoch.promotions);
    out.emit(row);
  }
  const std::vector<trace::Event> racy =
      bench::racy_trace(phases, threads, vars, /*seed=*/11);
  const ResidentRun racy_epoch =
      run_resident(racy, threads, detect::ClockEngine::kEpoch, 256);
  const ResidentRun racy_vector =
      run_resident(racy, threads, detect::ClockEngine::kVector, 256);
  {
    bench::JsonRow row("clock_resident");
    row.field("workload", "racy")
        .field("threads", threads)
        .field("events", racy.size())
        .field("epoch_clock_bytes", racy_epoch.peak_frontier_clock_bytes)
        .field("vector_clock_bytes", racy_vector.peak_frontier_clock_bytes)
        .field("hb_clock_bytes", racy_epoch.peak_hb_clock_bytes)
        .field("promotions", racy_epoch.promotions)
        .field("racy_pairs", racy_epoch.racy_pairs);
    out.emit(row);
  }
  return speedup;
}

/// Post-mortem HbIndex stamp store (ROADMAP clock follow-on (c)): frames
/// (stamps with the own component zeroed) are interned in the ClockArena, so
/// a thread's event run between sync edges shares one allocation.  The
/// workload has compute-bound phases (many accesses per thread per barrier),
/// the regime real programs live in; hb_dense_stamp_bytes is what the same
/// stamps cost as private full clocks.  Returns dense/interned.
double hb_index_row(const Output& out, int threads) {
  const std::vector<trace::Event> events =
      bench::phased_trace(/*events_per_var=*/16, threads,
                          /*vars=*/threads * 32);
  const detect::HbIndex hb =
      detect::HappensBeforeAnalysis().run(std::vector<trace::Event>(events));
  const std::size_t interned = hb.stamp_bytes();
  const std::size_t dense = hb.dense_stamp_bytes();
  const double ratio = interned > 0 ? static_cast<double>(dense) /
                                          static_cast<double>(interned)
                                    : 0.0;
  bench::JsonRow row("clock_hb_index");
  row.field("threads", threads)
      .field("events", events.size())
      .field("hb_dense_stamp_bytes", dense)
      .field("hb_clock_bytes", interned)
      .field("bytes_ratio", ratio);
  out.emit(row);
  return ratio;
}

int smoke(const Output& out) {
  // Small but still 64-wide: the acceptance shape at CI-friendly size.
  bool verdicts_equal = false;
  std::size_t epoch_bytes = 0;
  std::size_t vector_bytes = 0;
  const double speedup = engine_rows(out, /*threads=*/64, /*vars=*/8,
                                     /*phases=*/64, /*reps=*/3,
                                     &verdicts_equal, &epoch_bytes,
                                     &vector_bytes);
  if (!verdicts_equal) {
    std::fprintf(stderr, "smoke: engines reported different pair lists\n");
    return 1;
  }
  // Regression gate (satellite e): the epoch path must never be slower than
  // the vector baseline.  The 3x acceptance number is asserted on the full
  // run where timing noise is amortized; here we allow 10% jitter.
  if (speedup < 0.9) {
    std::fprintf(stderr, "smoke: epoch sweep regressed vs vector (%.2fx)\n",
                 speedup);
    return 1;
  }
  if (epoch_bytes * 5 > vector_bytes) {
    std::fprintf(stderr,
                 "smoke: epoch resident clock-bytes not 5x smaller "
                 "(%zu vs %zu)\n",
                 epoch_bytes, vector_bytes);
    return 1;
  }
  const double hb_ratio = hb_index_row(out, /*threads=*/16);
  if (hb_ratio < 2.0) {
    std::fprintf(stderr,
                 "smoke: interned HbIndex stamps not 2x smaller than dense "
                 "(%.2fx)\n",
                 hb_ratio);
    return 1;
  }
  std::printf(
      "bench_clock --smoke: OK (sweep %.2fx, resident %zu vs %zu bytes, "
      "hb index %.1fx smaller interned)\n",
      speedup, epoch_bytes, vector_bytes, hb_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const std::string json_path = flags.get("json-out", "BENCH_clock.json");
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_clock: cannot write %s\n", json_path.c_str());
    return 1;
  }
  Output out;
  out.json = json;

  int status = 0;
  if (flags.get_bool("smoke", false)) {
    status = smoke(out);
  } else {
    out.echo = true;
    micro_rows(out, flags.get_int("reps", 200000));
    bool verdicts_equal = false;
    std::size_t epoch_bytes = 0;
    std::size_t vector_bytes = 0;
    const double speedup = engine_rows(
        out, flags.get_int("threads", 64), flags.get_int("vars", 8),
        static_cast<std::size_t>(flags.get_int("phases", 256)),
        flags.get_int("reps-sweep", 3), &verdicts_equal, &epoch_bytes,
        &vector_bytes);
    if (!verdicts_equal) {
      std::fprintf(stderr, "bench_clock: engines disagree\n");
      status = 1;
    }
    // ISSUE-6 acceptance: >= 3x sweep speedup, >= 5x lower clock-bytes.
    if (speedup < 3.0) {
      std::fprintf(stderr, "bench_clock: sweep speedup %.2fx < 3x\n", speedup);
      status = 1;
    }
    if (epoch_bytes * 5 > vector_bytes) {
      std::fprintf(stderr, "bench_clock: clock-bytes ratio below 5x\n");
      status = 1;
    }
    if (hb_index_row(out, flags.get_int("threads", 64)) < 2.0) {
      std::fprintf(stderr, "bench_clock: interned HbIndex ratio below 2x\n");
      status = 1;
    }
  }
  std::fclose(json);
  return status;
}
