// E3 — the Section V.B detection table: LU/BT/SP with 6 injected violations
// each, checked by HOME, the ITC-like and the Marmot-like baselines.
//
// Paper values:
//   Benchmarks       HOME  ITC  Marmot
//   NPB-MZ LU (6)      6    5     5
//   NPB-MZ BT (6)      6    7     6
//   NPB-MZ SP (6)      6    6     5
#include <cstdio>

#include "src/apps/app.hpp"
#include "src/apps/toolrun.hpp"
#include "src/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace home::apps;
  const auto flags = home::util::Flags::parse(argc, argv);
  const int nranks = flags.get_int("nranks", 4);
  const int paper[3][3] = {{6, 5, 5}, {6, 7, 6}, {6, 6, 5}};

  std::printf("=== Section V.B: violations detected (6 injected per app), "
              "%d ranks x 2 threads ===\n",
              nranks);
  std::printf("%-16s %6s %6s %6s   %s\n", "Benchmark", "HOME", "ITC", "Marmot",
              "paper (HOME/ITC/Marmot)");

  bool all_match = true;
  const AppKind kinds[] = {AppKind::kLU, AppKind::kBT, AppKind::kSP};
  for (int k = 0; k < 3; ++k) {
    AppConfig cfg = paper_config(kinds[k], nranks);
    int values[3] = {0, 0, 0};
    const Tool tools[] = {Tool::kHome, Tool::kItc, Tool::kMarmot};
    for (int t = 0; t < 3; ++t) {
      values[t] = count_accuracy(run_with_tool(tools[t], cfg).report).table_value();
      if (values[t] != paper[k][t]) all_match = false;
    }
    std::printf("NPB-MZ %s (6) %6d %6d %6d   %d/%d/%d\n",
                k == 0 ? "LU" : (k == 1 ? "BT" : "SP"), values[0], values[1],
                values[2], paper[k][0], paper[k][1], paper[k][2]);
  }
  std::printf("\nresult: %s the paper's table\n",
              all_match ? "MATCHES" : "DIFFERS FROM");
  return 0;
}
