// Static-analysis bench (the static MHP + lockset tentpole): measures, over
// the examples/corpus sources, how much the dataflow engine shrinks the
// instrumentation plan (pruned sites = dynamic-monitoring overhead avoided)
// and how the analysis itself scales with program size.
//
// Modes:
//   bench_sast            one JSON row per corpus file (plan sizes, prune
//                         reasons, warning counts, analysis seconds) plus a
//                         synthetic scaling sweep
//   bench_sast --smoke    fast functional check: clean sources produce zero
//                         definite warnings and yield barrier-separated /
//                         critical-guarded / master-guarded prunes; violation
//                         sources produce definite warnings; plan v2 files
//                         round-trip.  ctest runs this at build time.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/sast/analysis.hpp"
#include "src/sast/diagnostics.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"
#include "src/util/strings.hpp"

#ifndef HOME_CORPUS_DIR
#define HOME_CORPUS_DIR "examples/corpus"
#endif

namespace {

using namespace home;

const char* kCorpusFiles[] = {
    "clean_critical_sends.c",   "clean_barrier_phases.c",
    "clean_master_funneled.c",  "clean_unnamed_critical.c",
    "clean_serial.c",           "violation_figure2.c",
    "violation_probe_race.c",   "violation_shared_request.c",
    "violation_collective_finalize.c",
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct CorpusResult {
  std::string name;
  sast::AnalysisResult analysis;
  std::vector<sast::StaticWarning> warnings;
  double seconds = 0;
};

std::vector<CorpusResult> analyze_corpus() {
  std::vector<CorpusResult> results;
  for (const char* file : kCorpusFiles) {
    const std::string path = std::string(HOME_CORPUS_DIR) + "/" + file;
    const std::string source = read_file(path);
    if (source.empty()) {
      std::fprintf(stderr, "bench_sast: cannot read %s\n", path.c_str());
      continue;
    }
    CorpusResult r;
    r.name = file;
    util::Stopwatch timer;
    r.analysis = sast::analyze_source(source);
    r.warnings = sast::diagnose(r.analysis);
    r.seconds = timer.elapsed_seconds();
    results.push_back(std::move(r));
  }
  return results;
}

std::size_t definite_count(const std::vector<sast::StaticWarning>& warnings) {
  std::size_t n = 0;
  for (const auto& w : warnings) {
    if (w.severity == sast::Severity::kDefinite) ++n;
  }
  return n;
}

/// Synthetic source with `n` parallel worker functions, each with a
/// barrier-phased region — exercises the interprocedural fixed point and the
/// per-region phase analysis at scale.
std::string synthetic_source(int n) {
  std::ostringstream os;
  os << "#include <mpi.h>\n";
  for (int i = 0; i < n; ++i) {
    os << "void worker" << i << "() {\n"
       << "  #pragma omp parallel\n  {\n"
       << "    #pragma omp critical(net" << i % 4 << ")\n"
       << "    { MPI_Send(&a, 1, MPI_INT, 1, " << i << ", MPI_COMM_WORLD); }\n"
       << "    #pragma omp barrier\n"
       << "    #pragma omp single\n"
       << "    { MPI_Recv(&a, 1, MPI_INT, 1, " << i
       << ", MPI_COMM_WORLD, MPI_STATUS_IGNORE); }\n"
       << "  }\n}\n";
  }
  os << "int main() {\n"
     << "  MPI_Init_thread(0, 0, MPI_THREAD_MULTIPLE, &provided);\n";
  for (int i = 0; i < n; ++i) os << "  worker" << i << "();\n";
  os << "  MPI_Finalize();\n  return 0;\n}\n";
  return os.str();
}

int smoke() {
  const std::vector<CorpusResult> results = analyze_corpus();
  if (results.size() != sizeof(kCorpusFiles) / sizeof(kCorpusFiles[0])) {
    std::fprintf(stderr, "smoke: corpus incomplete (%zu files analyzed)\n",
                 results.size());
    return 1;
  }

  std::map<std::string, std::size_t> reason_kinds;
  for (const CorpusResult& r : results) {
    const bool clean = util::starts_with(r.name, "clean_");
    const std::size_t definite = definite_count(r.warnings);
    if (clean && definite > 0) {
      std::fprintf(stderr, "smoke: %s has %zu definite warning(s):\n",
                   r.name.c_str(), definite);
      for (const auto& w : r.warnings) {
        std::fprintf(stderr, "  %s\n", w.to_string().c_str());
      }
      return 1;
    }
    if (!clean && definite == 0) {
      std::fprintf(stderr, "smoke: %s not flagged definite\n", r.name.c_str());
      return 1;
    }
    for (const auto& [label, reason] : r.analysis.plan.pruned) {
      const std::size_t paren = reason.find('(');
      reason_kinds[reason.substr(0, paren)] += 1;
    }
  }

  for (const char* kind :
       {"barrier-separated", "critical-guarded", "master-guarded"}) {
    if (reason_kinds[kind] == 0) {
      std::fprintf(stderr, "smoke: no %s prune found across the corpus\n",
                   kind);
      return 1;
    }
  }

  // The critical-guarded corpus file must have every parallel site pruned —
  // the measured overhead reduction.
  for (const CorpusResult& r : results) {
    if (r.name != "clean_critical_sends.c") continue;
    if (r.analysis.plan.instrumented_calls != 0 ||
        r.analysis.plan.pruned_calls != 2) {
      std::fprintf(stderr,
                   "smoke: clean_critical_sends plan unexpected "
                   "(instrumented=%zu pruned=%zu)\n",
                   r.analysis.plan.instrumented_calls,
                   r.analysis.plan.pruned_calls);
      return 1;
    }
  }

  // Plan v2 round-trip, including prune reasons.
  const char* tmp = "bench_sast_plan.tmp";
  const sast::InstrPlan& plan = results[0].analysis.plan;
  sast::save_plan_file(tmp, plan);
  const sast::InstrPlan loaded = sast::load_plan_file(tmp);
  std::remove(tmp);
  if (loaded.instrument != plan.instrument || loaded.pruned != plan.pruned) {
    std::fprintf(stderr, "smoke: plan v2 round-trip mismatch\n");
    return 1;
  }

  std::size_t pruned_total = 0;
  for (const CorpusResult& r : results) {
    pruned_total += r.analysis.plan.pruned_calls;
  }
  std::printf("bench_sast --smoke: OK (%zu corpus files, %zu pruned sites, "
              "%zu prune-reason kinds)\n",
              results.size(), pruned_total, reason_kinds.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.get_bool("smoke", false)) return smoke();

  for (const CorpusResult& r : analyze_corpus()) {
    bench::JsonRow("sast_plan")
        .field("source", r.name)
        .field("total_calls", r.analysis.plan.total_calls)
        .field("instrumented", r.analysis.plan.instrumented_calls)
        .field("filtered_serial", r.analysis.plan.filtered_calls)
        .field("pruned_static", r.analysis.plan.pruned_calls)
        .field("instrumented_fraction",
               r.analysis.plan.total_calls == 0
                   ? 0.0
                   : static_cast<double>(r.analysis.plan.instrumented_calls) /
                         static_cast<double>(r.analysis.plan.total_calls))
        .field("warnings", r.warnings.size())
        .field("definite", definite_count(r.warnings))
        .field("analysis_seconds", r.seconds)
        .print();
  }

  const int max_fns = flags.get_int("max-fns", 256);
  for (int n = 8; n <= max_fns; n *= 2) {
    const std::string source = synthetic_source(n);
    util::Stopwatch timer;
    const sast::AnalysisResult analysis = sast::analyze_source(source);
    const double seconds = timer.elapsed_seconds();
    bench::JsonRow("sast_scaling")
        .field("functions", n)
        .field("source_bytes", source.size())
        .field("calls", analysis.calls.size())
        .field("pruned_static", analysis.plan.pruned_calls)
        .field("analysis_seconds", seconds)
        .print();
  }
  return 0;
}
