// E9 — ablation of the detector combination (Section IV.D): the paper
// combines lockset and happens-before analysis "to reduce false positives
// and overhead" versus pure lockset, while still catching races that did not
// manifest (unlike pure HB with lock edges).
//
// Workloads (synthetic traces + a real app run):
//   A. critical-guarded MPI calls   — correct program; pure lockset must
//      not be fooled, HB-only must not be fooled, hybrid must not be fooled.
//   B. barrier-separated MPI calls  — correct program; pure *lockset*
//      over-reports (it ignores barrier ordering), hybrid stays clean.
//   C. latent (unmanifested) race   — hybrid and pure lockset report it;
//      pure HB with lock edges can be blinded by a lucky release/acquire
//      ordering.
// Plus analysis runtime of each mode over a large generated trace.
#include <cstdio>
#include <vector>

#include "src/detect/race_detector.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;
using detect::DetectorMode;
using detect::RaceDetector;
using detect::RaceDetectorConfig;
using trace::Event;
using trace::EventKind;

Event make_event(trace::Seq seq, trace::Tid tid, EventKind kind, trace::ObjId obj,
                 std::vector<trace::ObjId> locks = {}, std::uint64_t aux = 0) {
  Event e;
  e.seq = seq;
  e.tid = tid;
  e.kind = kind;
  e.obj = obj;
  e.aux = aux;
  e.locks_held = std::move(locks);
  return e;
}

// A: both threads write var 5 inside critical(lock 10).
std::vector<Event> workload_critical() {
  return {
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 5, {10}),
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kLockAcquire, 10, {10}),
      make_event(5, 1, EventKind::kMemWrite, 5, {10}),
      make_event(6, 1, EventKind::kLockRelease, 10, {10}),
  };
}

// B: writes separated by a 2-party barrier, no locks.
std::vector<Event> workload_barrier() {
  return {
      make_event(1, 0, EventKind::kMemWrite, 5),
      make_event(2, 0, EventKind::kBarrier, 77, {}, 2),
      make_event(3, 1, EventKind::kBarrier, 77, {}, 2),
      make_event(4, 1, EventKind::kMemWrite, 5),
  };
}

// C: a genuine race on var 6 hidden (for lock-edge HB) by an incidental
// release->acquire ordering of an unrelated critical section.
std::vector<Event> workload_latent() {
  return {
      make_event(1, 0, EventKind::kLockAcquire, 10, {10}),
      make_event(2, 0, EventKind::kMemWrite, 6, {10}),
      make_event(3, 0, EventKind::kLockRelease, 10, {10}),
      make_event(4, 1, EventKind::kLockAcquire, 10, {10}),
      make_event(5, 1, EventKind::kLockRelease, 10, {10}),
      make_event(6, 1, EventKind::kMemWrite, 6, {}),
  };
}

// Large random trace for throughput comparison.
std::vector<Event> workload_large(std::size_t n_events) {
  home::util::Rng rng(20150915);
  std::vector<Event> events;
  events.reserve(n_events);
  trace::Seq seq = 1;
  for (std::size_t i = 0; i < n_events; ++i) {
    const trace::Tid tid = static_cast<trace::Tid>(rng.next_below(8));
    const trace::ObjId var = 100 + rng.next_below(64);
    std::vector<trace::ObjId> locks;
    if (rng.next_bool(0.5)) locks.push_back(10 + rng.next_below(4));
    events.push_back(make_event(seq++, tid,
                                rng.next_bool(0.7) ? EventKind::kMemWrite
                                                   : EventKind::kMemRead,
                                var, std::move(locks)));
  }
  return events;
}

const char* verdict(bool racy) { return racy ? "RACE" : "clean"; }

}  // namespace

int main() {
  const DetectorMode modes[] = {DetectorMode::kHybrid, DetectorMode::kLocksetOnly,
                                DetectorMode::kHbOnly};

  std::printf("=== E9 ablation: detector combination (Section IV.D) ===\n\n");
  std::printf("%-22s %-12s %-12s %-12s\n", "workload (truth)", "hybrid",
              "lockset-only", "hb-only");

  struct Row {
    const char* name;
    std::vector<Event> events;
    trace::ObjId var;
  };
  Row rows[] = {
      {"A critical (clean)", workload_critical(), 5},
      {"B barrier (clean)", workload_barrier(), 5},
      {"C latent (race)", workload_latent(), 6},
  };
  for (auto& row : rows) {
    std::printf("%-22s", row.name);
    for (DetectorMode mode : modes) {
      RaceDetectorConfig cfg;
      cfg.mode = mode;
      const bool racy = RaceDetector(cfg).analyze(row.events).concurrent(row.var);
      std::printf(" %-12s", verdict(racy));
    }
    std::printf("\n");
  }

  std::printf("\nexpected: hybrid is the only column that is clean on A and B "
              "*and* reports C\n");
  std::printf("(lockset-only false-positives on B; hb-only misses C)\n\n");

  // Throughput of each mode on a large trace.
  const auto large = workload_large(20000);
  std::printf("analysis throughput on a %zu-event trace:\n", large.size());
  for (DetectorMode mode : modes) {
    RaceDetectorConfig cfg;
    cfg.mode = mode;
    cfg.max_pairs_per_var = 16;
    util::Stopwatch timer;
    const auto report = RaceDetector(cfg).analyze(large);
    std::printf("  %-14s %8.1f ms, %6zu concurrent pairs\n",
                detect::detector_mode_name(mode), timer.elapsed_ms(),
                report.total_pairs());
  }
  return 0;
}
