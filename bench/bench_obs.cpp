// Telemetry overhead bench (ISSUE-4 acceptance gate): the always-compiled
// obs layer must cost < 3% on the bench_detect_scaling analysis workload
// with telemetry enabled, and be one relaxed-atomic branch per hot-path hit
// when disabled.
//
// Modes:
//   bench_obs            full measurement: enabled vs disabled detector
//                        runs on the shared phased_trace workload, plus
//                        counter/span hot-path microbenches (ns/op).  One
//                        JSON object per line on stderr via bench::JsonRow.
//   bench_obs --smoke    fast functional pass for ctest: exercises both
//                        telemetry states, checks counters observe the work
//                        when enabled and stay silent when disabled, and
//                        sanity-bounds (20%) the measured overhead so a
//                        pathological hot-path regression fails the build.
//
// Knobs: --events (events-per-variable, default 4000), --threads, --vars,
// --reps (default 5; best-of to shed scheduler noise).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/detect/race_detector.hpp"
#include "src/obs/span.hpp"
#include "src/obs/telemetry.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

detect::RaceDetectorConfig detect_config() {
  detect::RaceDetectorConfig cfg;
  cfg.algo = detect::DetectorAlgo::kFrontier;
  cfg.analysis_threads = 1;  // serial: no scheduler noise in the comparison.
  return cfg;
}

/// Best-of-reps seconds for one analyze() pass over `events`.
double measure_analyze_seconds(const std::vector<trace::Event>& events,
                               int reps) {
  const detect::RaceDetectorConfig cfg = detect_config();
  volatile std::size_t sink = 0;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    auto report = detect::RaceDetector(cfg).analyze(events);
    sink = sink + report.total_pairs();
    const double seconds = timer.elapsed_seconds();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// ns per counter hit with telemetry in the current state.
double measure_counter_ns(std::size_t iters) {
  obs::Counter& c = obs::Registry::global().counter("bench.obs.hot");
  util::Stopwatch timer;
  for (std::size_t i = 0; i < iters; ++i) c.add(1);
  return timer.elapsed_seconds() * 1e9 / static_cast<double>(iters);
}

/// ns per Span construct/destruct pair in the current state.
double measure_span_ns(std::size_t iters) {
  util::Stopwatch timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::Span span("bench.obs.span");
  }
  return timer.elapsed_seconds() * 1e9 / static_cast<double>(iters);
}

struct OverheadResult {
  double disabled_s = 0.0;
  double enabled_s = 0.0;
  double overhead_pct = 0.0;
};

OverheadResult measure_overhead(std::size_t events_per_var, int threads,
                                int vars, int reps) {
  const auto events = bench::phased_trace(events_per_var, threads, vars);
  OverheadResult r;
  // Warm up caches/allocator on a throwaway pass before either timed state.
  obs::set_enabled(false);
  measure_analyze_seconds(events, 1);
  r.disabled_s = measure_analyze_seconds(events, reps);
  obs::set_enabled(true);
  r.enabled_s = measure_analyze_seconds(events, reps);
  r.overhead_pct = r.disabled_s > 0.0
                       ? (r.enabled_s - r.disabled_s) / r.disabled_s * 100.0
                       : 0.0;
  return r;
}

int run_full(const util::Flags& flags) {
  const auto events_per_var = static_cast<std::size_t>(
      std::max(1000, flags.get_int("events", 4000)));
  const int threads = std::max(1, flags.get_int("threads", 8));
  const int vars = std::max(1, flags.get_int("vars", 4));
  const int reps = std::max(1, flags.get_int("reps", 5));

  std::printf("=== bench_obs: telemetry overhead on the detect workload "
              "(events/var=%zu threads=%d vars=%d, best of %d) ===\n",
              events_per_var, threads, vars, reps);

  const OverheadResult r =
      measure_overhead(events_per_var, threads, vars, reps);
  std::printf("analyze disabled: %.5fs\n", r.disabled_s);
  std::printf("analyze enabled:  %.5fs\n", r.enabled_s);
  std::printf("overhead:         %+.2f%% (target < 3%%)\n", r.overhead_pct);
  bench::JsonRow("obs_overhead")
      .field("events_per_var", events_per_var)
      .field("threads", threads)
      .field("vars", vars)
      .field("disabled_seconds", r.disabled_s)
      .field("enabled_seconds", r.enabled_s)
      .field("overhead_pct", r.overhead_pct)
      .print(stderr);

  constexpr std::size_t kIters = 10'000'000;
  obs::set_enabled(true);
  const double counter_on = measure_counter_ns(kIters);
  const double span_on = measure_span_ns(kIters / 100);
  obs::set_enabled(false);
  const double counter_off = measure_counter_ns(kIters);
  const double span_off = measure_span_ns(kIters / 100);
  obs::set_enabled(true);

  std::printf("\ncounter hit: %.2f ns enabled, %.2f ns disabled\n",
              counter_on, counter_off);
  std::printf("span pair:   %.2f ns enabled, %.2f ns disabled\n",
              span_on, span_off);
  bench::JsonRow("obs_hot_path")
      .field("counter_ns_enabled", counter_on)
      .field("counter_ns_disabled", counter_off)
      .field("span_ns_enabled", span_on)
      .field("span_ns_disabled", span_off)
      .print(stderr);

  const bool ok = r.overhead_pct < 3.0;
  std::printf("\nbench_obs: %s\n",
              ok ? "OK (overhead under the 3% gate)"
                 : "OVER BUDGET (enabled telemetry costs >= 3%)");
  return ok ? 0 : 1;
}

// ----------------------------------------------------------------- smoke mode

int run_smoke() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "smoke FAIL: %s\n", what);
      ++failures;
    }
  };

  // Enabled: the detector run must land in the registry.
  obs::Registry& reg = obs::Registry::global();
  obs::set_enabled(true);
  const std::uint64_t checked_before =
      reg.counter("detect.pairs_checked").value();
  const auto events = bench::phased_trace(200, 4, 4);
  auto report = detect::RaceDetector(detect_config()).analyze(events);
  expect(report.total_pairs() == 0, "phased trace must be race-free");
  expect(reg.counter("detect.pairs_checked").value() > checked_before,
         "enabled telemetry did not count detector pair checks");

  // Disabled: the same run must leave every counter untouched.
  obs::set_enabled(false);
  const std::uint64_t checked_frozen =
      reg.counter("detect.pairs_checked").value();
  auto report2 = detect::RaceDetector(detect_config()).analyze(events);
  expect(report2.total_pairs() == 0, "phased trace must stay race-free");
  expect(reg.counter("detect.pairs_checked").value() == checked_frozen,
         "disabled telemetry still counted");
  obs::set_enabled(true);

  // Tiny overhead sanity bound: a generous 20% ceiling so a pathological
  // hot-path regression (e.g. an unconditional mutex) fails tier-1 without
  // the smoke becoming timing-flaky; the real < 3% gate is the full mode.
  const OverheadResult r = measure_overhead(800, 4, 4, 3);
  expect(r.overhead_pct < 20.0, "smoke overhead bound (20%) exceeded");

  if (failures == 0) std::printf("bench_obs --smoke: ok\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.get_bool("smoke", false)) return run_smoke();
  return run_full(flags);
}
