// Exploration bench (ISSUE-7): the cost of controlled scheduling.
//
// Experiments (one JSON row each, stdout and --json-out, default
// BENCH_explore.json):
//   explore_hook_disabled  ns per hook hit with no Explorer installed (the
//                          one-load fast path every production run pays),
//                          and the implied overhead on an uncontrolled
//                          hidden-race run (hook hits x ns / runtime) —
//                          acceptance gate < 5%.
//   explore_sweep_rate     schedules/sec of a wildcard sweep of the
//                          hidden-race app, full Session per schedule.
//   explore_finding        seed budget actually needed for the hidden V3
//                          and replay fidelity of the recorded schedule.
//
// Modes:
//   bench_explore          full sweep (64 schedules)
//   bench_explore --smoke  fast gate: disabled-hook overhead < 5%, a 16-seed
//                          fixed sweep finds the hidden violation the
//                          baseline missed, replay reproduces it; ctest runs
//                          this.
//
// Knobs: --schedules, --reps, --json-out.
#include <cstdio>
#include <set>
#include <string>

#include "bench/fig_common.hpp"
#include "src/apps/hidden_race.hpp"
#include "src/explore/hooks.hpp"
#include "src/explore/sweeper.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

explore::Sweeper::RankMain hidden_main() {
  return [](simmpi::Process& p) { apps::run_hidden_race_rank(p); };
}

explore::SweepConfig hidden_config(explore::StrategyKind strategy,
                                   int schedules) {
  explore::SweepConfig cfg;
  cfg.nranks = apps::kHiddenRaceRanks;
  cfg.nthreads = 2;
  cfg.schedules = schedules;
  cfg.strategy = strategy;
  return cfg;
}

/// ns per hook hit on the disabled fast path (one relaxed load + branch);
/// measured over a yield + pick pair so both hook flavours are covered.
double disabled_hook_ns(int reps, std::size_t* sink) {
  util::Stopwatch timer;
  for (int i = 0; i < reps; ++i) {
    explore::yield_point(explore::HookKind::kMpiCall, 0, "bench.site");
    *sink += explore::pick_point(explore::HookKind::kWildcardPick, 0,
                                 "bench.site", 4);
  }
  return timer.elapsed_seconds() * 1e9 / (2.0 * reps);
}

struct Output {
  std::FILE* json = nullptr;
  void emit(const bench::JsonRow& row) {
    row.print(stdout);
    if (json != nullptr) row.print(json);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const int schedules = flags.get_int("schedules", smoke ? 16 : 64);
  const int reps = flags.get_int("reps", smoke ? 2000000 : 20000000);

  const std::string json_path = flags.get("json-out", "BENCH_explore.json");
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_explore: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  Output out;
  out.json = json;
  bool ok = true;

  // ---------------------------------------------- disabled hook fast path
  std::size_t sink = 0;
  disabled_hook_ns(reps / 10, &sink);  // warm-up.
  const double hook_ns = disabled_hook_ns(reps, &sink);

  // Uncontrolled run wall-clock and per-run hook traffic: time the baseline
  // (exploration off, hooks on their fast path), and count the hook hits an
  // instrumented run of the same app makes.
  explore::SweepConfig base_cfg =
      hidden_config(explore::StrategyKind::kNone, 1);
  base_cfg.run_baseline = true;
  util::Stopwatch base_timer;
  const int base_reps = smoke ? 5 : 20;
  for (int i = 0; i < base_reps; ++i) {
    explore::SweepConfig cfg = hidden_config(explore::StrategyKind::kNone, 0);
    explore::Sweeper(cfg).run(hidden_main());
  }
  const double base_seconds = base_timer.elapsed_seconds() / base_reps;
  const explore::SweepResult probe =
      explore::Sweeper(base_cfg).run(hidden_main());
  const double hits_per_run =
      probe.schedules_run > 1
          ? static_cast<double>(probe.hook_hits) / (probe.schedules_run - 1)
          : static_cast<double>(probe.hook_hits);
  const double overhead_pct =
      base_seconds > 0.0
          ? hits_per_run * hook_ns / (base_seconds * 1e9) * 100.0
          : 0.0;

  out.emit(bench::JsonRow("explore_hook_disabled")
               .field("hook_ns", hook_ns)
               .field("hits_per_run", hits_per_run)
               .field("baseline_run_seconds", base_seconds)
               .field("overhead_pct", overhead_pct)
               .field("sink", sink));
  if (overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: disabled hook overhead %.3f%% >= 5%% gate "
                 "(%.2f ns/hit, %.0f hits/run)\n",
                 overhead_pct, hook_ns, hits_per_run);
    ok = false;
  }

  // -------------------------------------------------------- sweep rate
  const explore::SweepResult sweep =
      explore::Sweeper(
          hidden_config(explore::StrategyKind::kWildcardReorder, schedules))
          .run(hidden_main());
  const double rate =
      sweep.seconds > 0.0 ? sweep.schedules_run / sweep.seconds : 0.0;
  out.emit(bench::JsonRow("explore_sweep_rate")
               .field("schedules", sweep.schedules_run)
               .field("seconds", sweep.seconds)
               .field("schedules_per_sec", rate)
               .field("orderings", sweep.orderings.size())
               .field("hook_hits", static_cast<std::size_t>(sweep.hook_hits)));

  // ------------------------------------------- finding + replay fidelity
  const char kHiddenKey[] = "2|0|hidden.racy_recv|hidden.racy_recv|comm1";
  const explore::SweepFinding* finding = nullptr;
  for (const explore::SweepFinding& f : sweep.findings) {
    if (f.key == kHiddenKey) finding = &f;
  }
  if (finding == nullptr || !sweep.baseline_keys.empty()) {
    std::fprintf(stderr,
                 "FAIL: hidden violation not exploration-exclusive "
                 "(found=%d, baseline keys=%zu)\n%s",
                 finding != nullptr, sweep.baseline_keys.size(),
                 sweep.to_string().c_str());
    ok = false;
  } else {
    explore::Sweeper replayer(
        hidden_config(explore::StrategyKind::kWildcardReorder, 0));
    const std::set<std::string> replay_keys =
        replayer.replay(finding->schedule, hidden_main());
    const bool reproduced = replay_keys.count(kHiddenKey) > 0;
    out.emit(bench::JsonRow("explore_finding")
                 .field("first_seen_schedule", finding->schedule_index)
                 .field("first_seen_seed",
                        static_cast<std::size_t>(finding->seed))
                 .field("decisions", finding->schedule.decisions.size())
                 .field("replay_reproduced", reproduced ? 1 : 0));
    if (!reproduced) {
      std::fprintf(stderr, "FAIL: replay did not reproduce %s\n", kHiddenKey);
      ok = false;
    }
  }

  std::fclose(json);
  std::printf("%s (json: %s)\n", ok ? "OK" : "FAILED", json_path.c_str());
  return ok ? 0 : 1;
}
