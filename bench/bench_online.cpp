// Online streaming engine bench (the ISSUE-2 tentpole): events/sec of the
// streaming analyzer vs the buffered post-mortem pipeline over the same
// synthetic trace, and the resident-state ceiling as the trace length grows
// (post-mortem retains every event; online retires behind the watermark).
//
// Modes:
//   bench_online            full sweep, one JSON object per line (JsonRow)
//   bench_online --smoke    fast functional check (streamed verdicts match
//                           post-mortem, resident state stays bounded);
//                           ctest runs this at build time
//
// Knobs: --max-events (largest sweep point, default 320000), --threads,
// --vars, --retire (sweep's retirement interval), --reps.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/detect/race_detector.hpp"
#include "src/online/online_analyzer.hpp"
#include "src/spec/monitored.hpp"
#include "src/trace/thread_registry.hpp"
#include "src/trace/trace_log.hpp"
#include "src/util/flags.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace home;

/// A sustained hybrid-looking stream: round-robin writes over a small
/// variable set, a fresh message edge per step (the state that grows without
/// bound unless retired), and a full barrier every 64 steps (the
/// synchronization that advances the retirement watermark).
std::vector<trace::Event> streaming_trace(std::size_t n_events, int threads,
                                          int vars) {
  std::vector<trace::Event> events;
  events.reserve(n_events + n_events / 64 * static_cast<std::size_t>(threads));
  trace::Seq seq = 1;
  trace::ObjId msg = 7000;
  std::size_t i = 0;
  while (events.size() < n_events) {
    const auto tid =
        static_cast<trace::Tid>(i % static_cast<std::size_t>(threads));
    trace::Event e;
    e.seq = seq++;
    e.tid = tid;
    if (i % 3 == 0) {
      e.kind = trace::EventKind::kMsgSend;
      e.obj = msg;
    } else if (i % 3 == 1) {
      e.kind = trace::EventKind::kMsgRecv;
      e.obj = msg++;
    } else {
      // Write monitored variables (what the pipeline actually analyzes —
      // both stats counters filter on is_monitored_var).
      e.kind = trace::EventKind::kMemWrite;
      const int v = static_cast<int>(i % static_cast<std::size_t>(vars));
      e.obj = spec::monitored_var_id(v / 6,
                                     static_cast<spec::MonitoredVar>(v % 6));
    }
    events.push_back(std::move(e));
    ++i;
    if (i % 64 == 0) {
      const trace::ObjId barrier = 9000 + static_cast<trace::ObjId>(i);
      for (int t = 0; t < threads; ++t) {
        trace::Event b;
        b.seq = seq++;
        b.tid = static_cast<trace::Tid>(t);
        b.kind = trace::EventKind::kBarrier;
        b.obj = barrier;
        b.aux = static_cast<std::uint64_t>(threads);
        events.push_back(std::move(b));
      }
    }
  }
  return events;
}

struct OnlineRun {
  double seconds = 0;
  online::OnlineStats stats;
};

OnlineRun run_online(const std::vector<trace::Event>& events, int threads,
                     std::size_t retire_interval) {
  trace::ThreadRegistry registry;
  for (int t = 0; t < threads; ++t) {
    registry.register_thread(trace::kNoTid, 0, t == 0);
  }
  online::OnlineConfig cfg;
  cfg.queue_capacity = 4096;
  cfg.retire_interval = retire_interval;
  online::OnlineAnalyzer analyzer(cfg, nullptr, &registry);
  util::Stopwatch timer;
  for (const trace::Event& e : events) analyzer.on_event(e);
  analyzer.finish();
  OnlineRun run;
  run.seconds = timer.elapsed_seconds();
  run.stats = analyzer.stats();
  return run;
}

double run_post_mortem(const std::vector<trace::Event>& events,
                       std::size_t* pairs_out = nullptr) {
  detect::RaceDetectorConfig cfg;
  util::Stopwatch timer;
  const detect::ConcurrencyReport report =
      detect::RaceDetector(cfg).analyze(events);
  const double seconds = timer.elapsed_seconds();
  if (pairs_out != nullptr) {
    std::size_t pairs = 0;
    for (const auto& [var, verdict] : report.verdicts()) {
      if (spec::is_monitored_var(var)) pairs += verdict.pairs.size();
    }
    *pairs_out = pairs;
  }
  return seconds;
}

int smoke() {
  const int threads = 4;
  const std::vector<trace::Event> events = streaming_trace(20000, threads, 6);

  std::size_t post_pairs = 0;
  run_post_mortem(events, &post_pairs);
  const OnlineRun with_retire = run_online(events, threads, 256);
  const OnlineRun no_retire = run_online(events, threads, 0);

  if (with_retire.stats.events_processed != events.size()) {
    std::fprintf(stderr, "smoke: dropped events under kBlock\n");
    return 1;
  }
  if (with_retire.stats.concurrent_pairs != no_retire.stats.concurrent_pairs) {
    std::fprintf(stderr, "smoke: retirement changed the pair count (%zu vs %zu)\n",
                 with_retire.stats.concurrent_pairs,
                 no_retire.stats.concurrent_pairs);
    return 1;
  }
  if (with_retire.stats.concurrent_pairs != post_pairs) {
    std::fprintf(stderr, "smoke: online pairs %zu != post-mortem pairs %zu\n",
                 with_retire.stats.concurrent_pairs, post_pairs);
    return 1;
  }
  if (with_retire.stats.peak_resident >= no_retire.stats.peak_resident) {
    std::fprintf(stderr, "smoke: retirement did not shrink resident state\n");
    return 1;
  }
  if (with_retire.stats.peak_resident > 4000) {
    std::fprintf(stderr, "smoke: resident state not bounded (%zu)\n",
                 with_retire.stats.peak_resident);
    return 1;
  }
  std::printf("bench_online --smoke: OK (pairs=%zu, resident %zu vs %zu)\n",
              post_pairs, with_retire.stats.peak_resident,
              no_retire.stats.peak_resident);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.get_bool("smoke", false)) return smoke();

  const int threads = flags.get_int("threads", 4);
  const int vars = flags.get_int("vars", 6);
  const int reps = flags.get_int("reps", 3);
  const auto max_events =
      static_cast<std::size_t>(flags.get_int("max-events", 320000));
  const auto retire =
      static_cast<std::size_t>(flags.get_int("retire", 1024));

  for (std::size_t n = max_events / 32; n <= max_events; n *= 2) {
    const std::vector<trace::Event> events = streaming_trace(n, threads, vars);
    double online_best = 1e100;
    double post_best = 1e100;
    online::OnlineStats stats;
    for (int r = 0; r < reps; ++r) {
      const OnlineRun run = run_online(events, threads, retire);
      if (run.seconds < online_best) {
        online_best = run.seconds;
        stats = run.stats;
      }
      post_best = std::min(post_best, run_post_mortem(events));
    }
    const OnlineRun unbounded = run_online(events, threads, 0);
    bench::JsonRow("online_streaming")
        .field("events", events.size())
        .field("threads", threads)
        .field("retire_interval", retire)
        .field("online_seconds", online_best)
        .field("online_events_per_sec",
               static_cast<double>(events.size()) / online_best)
        .field("post_mortem_seconds", post_best)
        .field("post_mortem_events_per_sec",
               static_cast<double>(events.size()) / post_best)
        .field("peak_resident", stats.peak_resident)
        .field("peak_resident_unretired", unbounded.stats.peak_resident)
        .field("retire_sweeps", stats.retire_sweeps)
        .field("records_retired", stats.records_retired)
        .field("concurrent_pairs", stats.concurrent_pairs)
        .print();
  }
  return 0;
}
