// E5 — Figure 5: BT-MZ hybrid MPI/OpenMP execution time vs process count
// for Base / HOME / MARMOT / ITC.
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  const auto flags = home::util::Flags::parse(argc, argv);
  home::bench::run_figure("Figure 5", home::apps::AppKind::kBT, flags);
  return 0;
}
